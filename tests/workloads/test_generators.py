"""Unit tests for workload generators."""

import pytest

from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import (
    generate_objects,
    generate_query_workload,
    generate_routing_pairs,
)


class TestGenerateObjects:
    def test_count_and_uniqueness(self):
        points = generate_objects(UniformDistribution(), 300, RandomSource(1))
        assert len(points) == 300
        assert len(set(points)) == 300

    def test_deterministic(self):
        a = generate_objects(UniformDistribution(), 50, RandomSource(2))
        b = generate_objects(UniformDistribution(), 50, RandomSource(2))
        assert a == b


class TestRoutingPairs:
    def test_pair_count(self):
        pairs = generate_routing_pairs(list(range(40)), 100, RandomSource(3))
        assert len(pairs) == 100

    def test_pairs_are_distinct_objects(self):
        pairs = generate_routing_pairs(list(range(10)), 500, RandomSource(4))
        assert all(a != b for a, b in pairs)

    def test_pairs_reference_known_ids(self):
        ids = [5, 9, 11, 20]
        pairs = generate_routing_pairs(ids, 50, RandomSource(5))
        for a, b in pairs:
            assert a in ids and b in ids

    def test_requires_two_objects(self):
        with pytest.raises(ValueError):
            generate_routing_pairs([7], 5, RandomSource(6))

    def test_iterable(self):
        pairs = generate_routing_pairs(list(range(5)), 10, RandomSource(7))
        assert len(list(iter(pairs))) == 10


class TestQueryWorkload:
    def test_counts(self):
        workload = generate_query_workload(
            RandomSource(8), num_point=3, num_range=4, num_radius=5, num_segment=2)
        assert len(workload.point_queries) == 3
        assert len(workload.range_queries) == 4
        assert len(workload.radius_queries) == 5
        assert len(workload.segment_queries) == 2
        assert workload.total == 14

    def test_range_boxes_inside_unit_square(self):
        workload = generate_query_workload(RandomSource(9), num_range=20,
                                           range_extent=0.2)
        for box in workload.range_queries:
            assert 0 <= box.xmin <= box.xmax <= 1
            assert 0 <= box.ymin <= box.ymax <= 1
            assert box.width == pytest.approx(0.2)

    def test_segments_are_horizontal(self):
        workload = generate_query_workload(RandomSource(10), num_segment=10)
        for (a, b) in workload.segment_queries:
            assert a[1] == b[1]
            assert a[0] < b[0]

    def test_empty_workload(self):
        assert generate_query_workload(RandomSource(11)).total == 0

"""Unit tests for object-placement distributions."""

import numpy as np
import pytest

from repro.utils.rng import RandomSource
from repro.workloads.distributions import (
    ClusteredDistribution,
    GridDistribution,
    PowerLawDistribution,
    UniformDistribution,
    distribution_by_name,
    paper_distributions,
)


@pytest.fixture
def rng():
    return RandomSource(31)


def occupancy_counts(points, cells=8):
    """Number of points falling in each cell of a cells×cells grid."""
    array = np.asarray(points)
    xi = np.minimum((array[:, 0] * cells).astype(int), cells - 1)
    yi = np.minimum((array[:, 1] * cells).astype(int), cells - 1)
    counts = np.zeros((cells, cells), dtype=int)
    np.add.at(counts, (xi, yi), 1)
    return counts.ravel()


class TestUniform:
    def test_samples_inside_unit_square(self, rng):
        points = UniformDistribution().sample(500, rng)
        assert all(0 < x < 1 and 0 < y < 1 for x, y in points)

    def test_sample_count(self, rng):
        assert len(UniformDistribution().sample(123, rng)) == 123

    def test_roughly_even_occupancy(self, rng):
        counts = occupancy_counts(UniformDistribution().sample(4000, rng))
        assert counts.max() < 4 * max(counts.mean(), 1)


class TestPowerLaw:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowerLawDistribution(alpha=0)
        with pytest.raises(ValueError):
            PowerLawDistribution(alpha=1, cells_per_axis=1)

    def test_samples_inside_unit_square(self, rng):
        points = PowerLawDistribution(alpha=2).sample(500, rng)
        assert all(0 < x < 1 and 0 < y < 1 for x, y in points)

    def test_name_includes_alpha(self):
        assert PowerLawDistribution(alpha=5).name == "powerlaw-a5"

    def test_higher_alpha_is_more_skewed(self, rng):
        """The max-cell occupancy must grow with the skew exponent."""
        low = occupancy_counts(PowerLawDistribution(alpha=1).sample(4000, RandomSource(1)))
        high = occupancy_counts(PowerLawDistribution(alpha=5).sample(4000, RandomSource(1)))
        assert high.max() > low.max()

    def test_alpha5_concentrates_mass(self):
        """With α=5 the most popular cells hold a large share of all objects."""
        counts = occupancy_counts(
            PowerLawDistribution(alpha=5).sample(4000, RandomSource(2)), cells=64)
        counts = np.sort(counts)[::-1]
        assert counts[:10].sum() > 0.5 * counts.sum()

    def test_more_skewed_than_uniform(self):
        uniform = occupancy_counts(UniformDistribution().sample(4000, RandomSource(3)))
        skewed = occupancy_counts(PowerLawDistribution(alpha=2).sample(4000, RandomSource(3)))
        assert skewed.std() > uniform.std()


class TestOtherFamilies:
    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            ClusteredDistribution(num_clusters=0)
        with pytest.raises(ValueError):
            ClusteredDistribution(spread=0)
        with pytest.raises(ValueError):
            ClusteredDistribution(background_fraction=2.0)

    def test_clustered_inside_unit_square(self, rng):
        points = ClusteredDistribution().sample(500, rng)
        assert all(0 < x < 1 and 0 < y < 1 for x, y in points)

    def test_clustered_is_clustered(self):
        counts = occupancy_counts(
            ClusteredDistribution(num_clusters=3, spread=0.01).sample(2000, RandomSource(5)),
            cells=16)
        assert counts.max() > 10 * max(counts.mean(), 1)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            GridDistribution(jitter=-1)

    def test_grid_sample_count_and_bounds(self, rng):
        points = GridDistribution().sample(120, rng)
        assert len(points) == 120
        assert all(0 < x < 1 and 0 < y < 1 for x, y in points)


class TestRegistry:
    def test_paper_distributions_order(self):
        names = [d.name for d in paper_distributions()]
        assert names == ["uniform", "powerlaw-a1", "powerlaw-a2", "powerlaw-a5"]

    def test_lookup_by_name(self):
        assert distribution_by_name("uniform").name == "uniform"
        assert distribution_by_name("powerlaw-a5").alpha == 5.0
        assert distribution_by_name("clustered").name.startswith("clustered")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            distribution_by_name("nope")

    def test_determinism_given_seed(self):
        a = PowerLawDistribution(alpha=2).sample(50, RandomSource(7))
        b = PowerLawDistribution(alpha=2).sample(50, RandomSource(7))
        assert a == b

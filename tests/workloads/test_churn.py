"""Unit tests for churn traces."""

import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.utils.rng import RandomSource
from repro.workloads.churn import ChurnEvent, generate_churn_trace, replay_churn


class TestChurnEvent:
    def test_join_requires_position(self):
        with pytest.raises(ValueError):
            ChurnEvent(kind="join")

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ChurnEvent(kind="explode")

    def test_leave_without_position(self):
        assert ChurnEvent(kind="leave").position is None


class TestTraceGeneration:
    def test_event_count(self):
        trace = generate_churn_trace(100, RandomSource(1))
        assert len(trace) == 100
        assert trace.join_count + trace.leave_count == 100

    def test_warmup_is_all_joins(self):
        trace = generate_churn_trace(50, RandomSource(2), warmup_joins=20)
        assert all(e.kind == "join" for e in list(trace)[:20])

    def test_leave_probability_zero_means_no_leaves(self):
        trace = generate_churn_trace(60, RandomSource(3), leave_probability=0.0)
        assert trace.leave_count == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_churn_trace(5, RandomSource(4), warmup_joins=10)
        with pytest.raises(ValueError):
            generate_churn_trace(50, RandomSource(4), leave_probability=1.0)
        with pytest.raises(ValueError):
            generate_churn_trace(50, RandomSource(4), crash_probability=1.0)
        with pytest.raises(ValueError):
            generate_churn_trace(50, RandomSource(4), leave_probability=0.6,
                                 crash_probability=0.5)

    def test_crash_probability_mixes_in_crashes(self):
        trace = generate_churn_trace(300, RandomSource(6),
                                     leave_probability=0.2,
                                     crash_probability=0.2)
        assert trace.crash_count > 0
        assert trace.join_count + trace.leave_count + trace.crash_count == 300

    def test_zero_crash_probability_preserves_trace_stream(self):
        """crash_probability=0 must reproduce pre-existing traces exactly."""
        baseline = generate_churn_trace(120, RandomSource(7),
                                        leave_probability=0.3)
        with_flag = generate_churn_trace(120, RandomSource(7),
                                         leave_probability=0.3,
                                         crash_probability=0.0)
        assert baseline == with_flag
        assert with_flag.crash_count == 0

    def test_population_never_goes_negative(self):
        trace = generate_churn_trace(200, RandomSource(5), leave_probability=0.49)
        population = 0
        for event in trace:
            population += 1 if event.kind == "join" else -1
            assert population >= 0


class TestReplay:
    def test_replay_keeps_overlay_consistent(self):
        overlay = VoroNet(VoroNetConfig(n_max=400, seed=6))
        trace = generate_churn_trace(150, RandomSource(6), leave_probability=0.35)
        alive = replay_churn(overlay, trace, RandomSource(7))
        assert len(alive) == len(overlay)
        assert set(alive) == set(overlay.object_ids())
        assert overlay.check_consistency() == []

    def test_replay_returns_survivors(self):
        overlay = VoroNet(VoroNetConfig(n_max=200, seed=8))
        trace = generate_churn_trace(40, RandomSource(8), leave_probability=0.0)
        alive = replay_churn(overlay, trace, RandomSource(9))
        assert len(alive) == 40

    def test_replay_requires_crash_callable_for_crash_events(self):
        overlay = VoroNet(VoroNetConfig(n_max=400, seed=10))
        trace = generate_churn_trace(120, RandomSource(10),
                                     leave_probability=0.1,
                                     crash_probability=0.3)
        with pytest.raises(ValueError):
            replay_churn(overlay, trace, RandomSource(11))

    def test_replay_hands_crash_victims_to_the_injector(self):
        from repro.simulation.failures import CrashInjector

        overlay = VoroNet(VoroNetConfig(n_max=600, seed=12))
        trace = generate_churn_trace(150, RandomSource(12),
                                     leave_probability=0.1,
                                     crash_probability=0.25,
                                     warmup_joins=30)
        injector = CrashInjector(overlay)
        damage_seen = {"stale": 0}

        def crash_and_repair(victim):
            # Interleaved joins route over survivor views, so the
            # anti-entropy pass must keep up with the crash stream —
            # unrepaired dangling references are live routing hazards.
            injector.crash(victim)
            damage_seen["stale"] += injector.assess_damage().total_stale_entries
            injector.repair()

        alive = replay_churn(overlay, trace, RandomSource(13),
                             crash=crash_and_repair)
        assert set(alive) == set(overlay.object_ids())
        report = injector.assess_damage()
        assert report.crashed == trace.crash_count
        assert damage_seen["stale"] > 0
        assert report.total_stale_entries == 0
        assert overlay.check_consistency() == []

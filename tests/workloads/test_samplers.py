"""Target samplers: seeded determinism and distribution shape."""

import numpy as np
import pytest

from repro.core.overlay import VoroNet
from repro.utils.rng import RandomSource
from repro.workloads.samplers import (FlashCrowdTargets, HotspotTargets,
                                      MovingObjects, UniformTargets,
                                      ZipfTargets)


def _positions(count, seed=0):
    rng = RandomSource(seed)
    return [tuple(p) for p in rng.generator.uniform(0.02, 0.98, (count, 2))]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        for factory in (lambda s: UniformTargets(500, seed=s),
                        lambda s: ZipfTargets(500, alpha=1.1, seed=s)):
            a, b = factory(42), factory(42)
            np.testing.assert_array_equal(a.sample(1000), b.sample(1000))

    def test_different_seed_different_stream(self):
        a = ZipfTargets(500, alpha=1.1, seed=1)
        b = ZipfTargets(500, alpha=1.1, seed=2)
        assert not np.array_equal(a.sample(1000), b.sample(1000))

    def test_hotspot_deterministic(self):
        positions = _positions(400)
        a = HotspotTargets(positions, seed=9)
        b = HotspotTargets(positions, seed=9)
        np.testing.assert_array_equal(a.sample(500), b.sample(500))

    def test_split_draws_match_one_draw(self):
        whole = UniformTargets(300, seed=5).sample(400)
        split = UniformTargets(300, seed=5)
        parts = np.concatenate([split.sample(150), split.sample(250)])
        np.testing.assert_array_equal(whole, parts)


class TestZipfShape:
    def test_top_rank_mass_matches_expected(self):
        population, alpha, draws = 200, 1.0, 60_000
        sampler = ZipfTargets(population, alpha=alpha, seed=7)
        samples = sampler.sample(draws)
        counts = np.bincount(samples, minlength=population)
        # Empirical frequency of the most popular objects must match the
        # analytic Zipf mass on this fixed seed.
        for rank in (0, 1, 4):
            top_object = sampler.objects_by_rank[rank]
            empirical = counts[top_object] / draws
            expected = sampler.expected_mass(rank)
            assert empirical == pytest.approx(expected, rel=0.12), rank

    def test_mass_decreases_with_rank(self):
        sampler = ZipfTargets(50, alpha=2.0, seed=3)
        masses = [sampler.expected_mass(r) for r in range(50)]
        assert masses == sorted(masses, reverse=True)
        assert sum(masses) == pytest.approx(1.0)

    def test_ranking_is_a_seeded_permutation(self):
        sampler = ZipfTargets(100, alpha=1.0, seed=11)
        assert sorted(sampler.objects_by_rank.tolist()) == list(range(100))
        # rank_of inverts objects_by_rank
        for rank in (0, 42, 99):
            assert sampler.rank_of[sampler.objects_by_rank[rank]] == rank

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ZipfTargets(10, alpha=0.0)


class TestHotspot:
    def test_hot_fraction_targets_in_disk(self):
        positions = _positions(600)
        sampler = HotspotTargets(positions, center=(0.5, 0.5), radius=0.15,
                                 hot_fraction=0.8, seed=2)
        assert len(sampler.hot_indices) > 0
        samples = sampler.sample(8000)
        inside = np.isin(samples, sampler.hot_indices).mean()
        # hot_fraction of queries pick inside explicitly; the uniform
        # branch adds a little more mass that also lands inside.
        assert inside > 0.8
        assert inside < 0.95

    def test_empty_disk_degrades_to_uniform(self):
        positions = [(0.9, 0.9), (0.95, 0.95), (0.85, 0.92)]
        sampler = HotspotTargets(positions, center=(0.1, 0.1), radius=0.05,
                                 hot_fraction=0.9, seed=4)
        assert len(sampler.hot_indices) == 0
        samples = sampler.sample(300)
        assert set(np.unique(samples)) <= {0, 1, 2}

    def test_validation(self):
        positions = _positions(10)
        with pytest.raises(ValueError):
            HotspotTargets(positions, radius=0.0)
        with pytest.raises(ValueError):
            HotspotTargets(positions, hot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotTargets([(0.5,)], radius=0.1)


class TestFlashCrowd:
    def test_phase_switching(self):
        population = 100
        hot = ZipfTargets(population, alpha=5.0, seed=1)
        flash = FlashCrowdTargets([
            (0, UniformTargets(population, seed=0)),
            (200, hot),
        ])
        first = flash.sample(200)
        second = flash.sample(200)
        # Phase 2 draws from the heavily skewed sampler: its unique-target
        # census collapses relative to uniform.
        assert len(np.unique(second)) < len(np.unique(first)) / 2

    def test_batch_spanning_boundary_matches_per_query_stream(self):
        def build():
            return FlashCrowdTargets([
                (0, UniformTargets(80, seed=3)),
                (50, ZipfTargets(80, alpha=2.0, seed=4)),
            ])

        batched = build().sample(120)
        stepped = build()
        per_query = np.concatenate([stepped.sample(1) for _ in range(120)])
        np.testing.assert_array_equal(batched, per_query)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdTargets([])
        with pytest.raises(ValueError):
            FlashCrowdTargets([(5, UniformTargets(10, seed=0))])
        with pytest.raises(ValueError):
            FlashCrowdTargets([(0, UniformTargets(10, seed=0)),
                               (10, UniformTargets(20, seed=0))])


class TestMovingObjects:
    def _overlay(self, count=40, seed=1):
        overlay = VoroNet(n_max=count * 2, seed=seed)
        ids = overlay.bulk_load(_positions(count, seed=seed))
        return overlay, ids

    def test_move_reuses_id_and_changes_position(self):
        overlay, ids = self._overlay()
        mover = MovingObjects(seed=5, reuse_ids=True)
        before = {oid: overlay.position_of(oid) for oid in ids}
        old_id, new_id = mover.apply(overlay)
        assert old_id == new_id
        assert overlay.position_of(old_id) != before[old_id]
        assert len(overlay) == len(ids)

    def test_turnover_churn_allocates_fresh_id(self):
        overlay, ids = self._overlay()
        mover = MovingObjects(seed=5, reuse_ids=False)
        old_id, new_id = mover.apply(overlay)
        assert old_id != new_id
        assert old_id not in overlay
        assert new_id in overlay

    def test_seeded_replay_is_identical(self):
        trace = []
        for _ in range(2):
            overlay, _ids = self._overlay()
            mover = MovingObjects(seed=13)
            trace.append([mover.apply(overlay) for _ in range(10)])
        assert trace[0] == trace[1]

    def test_moves_counted(self):
        overlay, _ids = self._overlay()
        mover = MovingObjects(seed=2)
        for _ in range(3):
            mover.apply(overlay)
        assert mover.moves_applied == 3

"""Unit tests for the seeded random source."""

import numpy as np

from repro.utils.rng import RandomSource, spawn_rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = RandomSource(7), RandomSource(7)
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_different_seeds_differ(self):
        a, b = RandomSource(7), RandomSource(8)
        assert [a.uniform() for _ in range(10)] != [b.uniform() for _ in range(10)]

    def test_seed_property(self):
        assert RandomSource(42).seed == 42
        assert RandomSource().seed is None

    def test_wrapping_generator_shares_stream(self):
        generator = np.random.default_rng(3)
        source = RandomSource(generator)
        assert source.generator is generator

    def test_wrapping_random_source_shares_stream(self):
        a = RandomSource(5)
        b = RandomSource(a)
        first = a.uniform()
        second = b.uniform()
        assert first != second  # both draws advanced the same stream


class TestDraws:
    def test_uniform_bounds(self):
        rng = RandomSource(1)
        values = [rng.uniform(2.0, 3.0) for _ in range(200)]
        assert all(2.0 <= v < 3.0 for v in values)

    def test_uniform_array_shape(self):
        assert RandomSource(1).uniform_array(0, 1, 17).shape == (17,)

    def test_integer_bounds(self):
        rng = RandomSource(2)
        values = [rng.integer(3, 9) for _ in range(200)]
        assert all(3 <= v < 9 for v in values)
        assert set(values) == set(range(3, 9))

    def test_integers_array(self):
        values = RandomSource(2).integers(0, 5, 100)
        assert values.shape == (100,)
        assert values.min() >= 0 and values.max() < 5

    def test_choice_scalar_and_list(self):
        rng = RandomSource(3)
        sequence = ["a", "b", "c", "d"]
        assert rng.choice(sequence) in sequence
        picks = rng.choice(sequence, size=3, replace=False)
        assert len(picks) == 3 and len(set(picks)) == 3

    def test_shuffle_permutes_in_place(self):
        rng = RandomSource(4)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_random_point_in_unit_square(self):
        rng = RandomSource(5)
        for _ in range(50):
            x, y = rng.random_point()
            assert 0.0 <= x < 1.0 and 0.0 <= y < 1.0

    def test_random_points_shape(self):
        assert RandomSource(5).random_points(12).shape == (12, 2)

    def test_exponential_positive(self):
        rng = RandomSource(6)
        assert all(rng.exponential(2.0) > 0 for _ in range(100))


class TestSpawning:
    def test_spawn_children_are_independent(self):
        parent = RandomSource(9)
        child_a, child_b = parent.spawn(2)
        assert [child_a.uniform() for _ in range(5)] != [child_b.uniform() for _ in range(5)]

    def test_spawn_rng_yields_requested_count(self):
        children = list(spawn_rng(11, 4))
        assert len(children) == 4

    def test_fork_returns_single_child(self):
        assert isinstance(RandomSource(1).fork(), RandomSource)

"""Unit tests for logging helpers."""

import io
import logging

from repro.utils.logging import configure_logging, get_logger


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger("simulation").name == "repro.simulation"

    def test_already_namespaced(self):
        assert get_logger("repro.core").name == "repro.core"

    def test_has_null_handler(self):
        logger = get_logger("nullcheck")
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)


class TestConfigureLogging:
    def test_messages_reach_stream(self):
        stream = io.StringIO()
        configure_logging(level=logging.INFO, stream=stream)
        get_logger("configured").info("hello world")
        assert "hello world" in stream.getvalue()

    def test_reconfiguration_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging(stream=first)
        configure_logging(stream=second)
        get_logger("configured").warning("only in second")
        assert "only in second" not in first.getvalue()
        assert "only in second" in second.getvalue()

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level=logging.WARNING, stream=stream)
        get_logger("levels").info("quiet")
        get_logger("levels").warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output
        assert "loud" in output

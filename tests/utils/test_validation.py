"""Unit tests for validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_unit_square,
    check_positive,
    check_probability,
    ensure_type,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_probabilities(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckInUnitSquare:
    def test_accepts_interior_point(self):
        assert check_in_unit_square((0.3, 0.7)) == (0.3, 0.7)

    def test_accepts_boundary(self):
        assert check_in_unit_square((0.0, 1.0)) == (0.0, 1.0)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_unit_square((1.2, 0.5))

    def test_tolerance_allows_overshoot(self):
        assert check_in_unit_square((1.1, 0.5), tolerance=0.2) == (1.1, 0.5)

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            check_in_unit_square((0.1, 0.2, 0.3))


class TestEnsureType:
    def test_accepts_matching_type(self):
        assert ensure_type(3, int, "n") == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            ensure_type("3", int, "n")

"""Unit tests for degree-distribution analysis."""

import pytest

from repro.analysis.degree import degree_summary, merge_histograms


class TestDegreeSummary:
    def test_empty_histogram(self):
        summary = degree_summary({})
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_basic_statistics(self):
        summary = degree_summary({5: 10, 6: 30, 7: 10})
        assert summary.count == 50
        assert summary.mean == pytest.approx(6.0)
        assert summary.mode == 6
        assert summary.min_degree == 5
        assert summary.max_degree == 7

    def test_std_of_constant_histogram_is_zero(self):
        assert degree_summary({6: 100}).std == 0.0

    def test_fraction_at(self):
        summary = degree_summary({5: 25, 6: 75})
        assert summary.fraction_at(6) == pytest.approx(0.75)
        assert summary.fraction_at(9) == 0.0

    def test_fraction_between(self):
        summary = degree_summary({4: 10, 5: 20, 6: 30, 7: 40})
        assert summary.fraction_between(5, 6) == pytest.approx(0.5)

    def test_zero_counts_dropped(self):
        summary = degree_summary({5: 0, 6: 10})
        assert summary.min_degree == 6

    def test_overlay_histogram_round_trip(self, small_overlay):
        summary = degree_summary(small_overlay.degree_histogram())
        assert summary.count == len(small_overlay)
        assert 4.0 < summary.mean < 6.5


class TestMergeHistograms:
    def test_merge(self):
        merged = merge_histograms([{5: 2, 6: 3}, {6: 1, 7: 4}])
        assert merged == {5: 2, 6: 4, 7: 4}

    def test_merge_empty(self):
        assert merge_histograms([]) == {}
        assert merge_histograms([{}, {3: 1}]) == {3: 1}

"""Unit tests for ASCII plotting helpers and summary statistics."""

import pytest

from repro.analysis.plots import ascii_histogram, ascii_series, format_table
from repro.analysis.statistics import relative_change, summarize


class TestAsciiHistogram:
    def test_empty(self):
        assert "empty" in ascii_histogram({})

    def test_contains_every_value(self):
        output = ascii_histogram({4: 10, 6: 80, 8: 5})
        assert "4" in output and "6" in output and "8" in output

    def test_bar_lengths_proportional(self):
        output = ascii_histogram({1: 10, 2: 50}, width=50)
        lines = output.splitlines()
        bar_1 = lines[1].count("#")
        bar_2 = lines[2].count("#")
        assert bar_2 > bar_1

    def test_zero_count_has_no_bar(self):
        output = ascii_histogram({1: 0, 2: 5})
        assert output.splitlines()[1].count("#") == 0


class TestAsciiSeries:
    def test_empty(self):
        assert "empty" in ascii_series([], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_series([1, 2], [1])

    def test_contains_markers_and_ranges(self):
        output = ascii_series([1, 2, 3], [10, 20, 30], x_label="N", y_label="hops")
        assert "*" in output
        assert "N" in output and "hops" in output

    def test_flat_series(self):
        output = ascii_series([1, 2, 3], [5, 5, 5])
        assert "*" in output


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "1.23" in table
        assert "2.00" in table

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert len(table.splitlines()) == 2


class TestSummaries:
    def test_summarize_empty(self):
        assert summarize([]).count == 0

    def test_summarize_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_summary_as_dict(self):
        keys = set(summarize([1.0]).as_dict())
        assert {"count", "mean", "std", "min", "median", "max"} <= keys

    def test_relative_change(self):
        assert relative_change(10, 15) == pytest.approx(0.5)
        assert relative_change(0, 15) == 0.0
        assert relative_change(10, 5) == pytest.approx(-0.5)

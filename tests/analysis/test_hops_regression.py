"""Unit tests for routing measurement sweeps and the poly-log regression."""

import math

import pytest

from repro.analysis.hops import HopStatistics, measure_routing, sweep_overlay_sizes
from repro.analysis.regression import fit_polylog_exponent
from repro.core import VoroNet
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


class TestHopStatistics:
    def test_from_hops(self):
        stats = HopStatistics.from_hops([1, 2, 3, 4, 100])
        assert stats.samples == 5
        assert stats.mean == pytest.approx(22.0)
        assert stats.median == 3
        assert stats.maximum == 100

    def test_empty(self):
        stats = HopStatistics.from_hops([], failures=3)
        assert stats.samples == 0
        assert stats.failures == 3


class TestMeasureRouting:
    def test_measure_on_small_overlay(self, small_overlay):
        stats = measure_routing(small_overlay, 50, RandomSource(1))
        assert stats.samples == 50
        assert stats.failures == 0
        assert stats.mean > 0


class TestSweep:
    def test_sweep_checkpoint_sizes(self):
        rng = RandomSource(2)
        positions = generate_objects(UniformDistribution(), 300, rng)
        points = sweep_overlay_sizes(positions, [100, 200, 300], rng, num_pairs=40)
        assert [p.size for p in points] == [100, 200, 300]
        assert all(p.mean_hops > 0 for p in points)

    def test_sweep_requires_enough_positions(self):
        rng = RandomSource(3)
        positions = generate_objects(UniformDistribution(), 50, rng)
        with pytest.raises(ValueError):
            sweep_overlay_sizes(positions, [100], rng)

    def test_sweep_needs_checkpoints(self):
        with pytest.raises(ValueError):
            sweep_overlay_sizes([], [], RandomSource(4))

    def test_sweep_hops_grow_with_size(self):
        rng = RandomSource(5)
        positions = generate_objects(UniformDistribution(), 800, rng)
        points = sweep_overlay_sizes(positions, [100, 800], rng, num_pairs=120)
        assert points[-1].mean_hops > points[0].mean_hops

    def test_progress_callback(self):
        rng = RandomSource(6)
        positions = generate_objects(UniformDistribution(), 120, rng)
        seen = []
        sweep_overlay_sizes(positions, [60, 120], rng, num_pairs=20,
                            progress=seen.append)
        assert seen == [60, 120]


class TestRegression:
    def test_perfect_quadratic_polylog(self):
        sizes = [1000, 3000, 10_000, 30_000, 100_000]
        hops = [0.5 * math.log(n) ** 2 for n in sizes]
        fit = fit_polylog_exponent(sizes, hops)
        assert fit.slope == pytest.approx(2.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear_log_gives_slope_one(self):
        sizes = [1000, 3000, 10_000, 30_000]
        hops = [2.0 * math.log(n) for n in sizes]
        fit = fit_polylog_exponent(sizes, hops)
        assert fit.slope == pytest.approx(1.0, abs=1e-9)

    def test_predict_hops_round_trip(self):
        sizes = [1000, 10_000, 100_000]
        hops = [0.7 * math.log(n) ** 2 for n in sizes]
        fit = fit_polylog_exponent(sizes, hops)
        assert fit.predict_hops(50_000) == pytest.approx(
            0.7 * math.log(50_000) ** 2, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_polylog_exponent([10], [3.0])
        with pytest.raises(ValueError):
            fit_polylog_exponent([10, 20], [3.0])  # length mismatch
        with pytest.raises(ValueError):
            fit_polylog_exponent([2, 10], [1.0, 2.0])  # size <= e
        with pytest.raises(ValueError):
            fit_polylog_exponent([10, 20], [0.0, 2.0])  # non-positive hops
        with pytest.raises(ValueError):
            fit_polylog_exponent([10, 100], [3.0, -1.0])

    def test_predict_requires_reasonable_size(self):
        fit = fit_polylog_exponent([100, 1000], [10.0, 20.0])
        with pytest.raises(ValueError):
            fit.predict_hops(2)

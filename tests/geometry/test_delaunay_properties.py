"""Property-based tests (hypothesis) for the Delaunay kernel."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.delaunay import DelaunayTriangulation
from repro.geometry.point import distance_sq
from repro.geometry.predicates import incircle, orient2d
from repro.geometry.scipy_backend import compare_with_scipy

# Coordinates drawn on a coarse grid of floats to exercise degeneracies
# (collinear triples, cocircular quadruples) much more often than uniform
# random floats would.
coordinate = st.integers(min_value=0, max_value=40).map(lambda v: v / 40.0)
point = st.tuples(coordinate, coordinate)
point_sets = st.lists(point, min_size=1, max_size=40, unique=True)
continuous_point = st.tuples(
    st.floats(min_value=0.001, max_value=0.999, allow_nan=False),
    st.floats(min_value=0.001, max_value=0.999, allow_nan=False),
)
continuous_sets = st.lists(continuous_point, min_size=4, max_size=40, unique=True)


def build(points):
    dt = DelaunayTriangulation()
    for p in points:
        dt.insert(p)
    return dt


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point_sets)
def test_structure_is_always_valid(points):
    """Every insertion sequence leaves a structurally valid triangulation."""
    dt = build(points)
    dt.validate()
    assert len(dt) == len(points)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point_sets)
def test_empty_circumcircle_property(points):
    """No vertex lies strictly inside the circumcircle of any triangle."""
    dt = build(points)
    all_points = {vid: dt.point(vid) for vid in dt.vertex_ids()}
    for (u, v, w) in dt.triangles():
        pu, pv, pw = all_points[u], all_points[v], all_points[w]
        assert orient2d(pu, pv, pw) > 0
        for other, point_other in all_points.items():
            if other in (u, v, w):
                continue
            assert incircle(pu, pv, pw, point_other) <= 0


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point_sets)
def test_adjacency_is_symmetric(points):
    """u in neighbors(v) if and only if v in neighbors(u)."""
    dt = build(points)
    for vid in dt.vertex_ids():
        for nb in dt.neighbors(vid):
            assert vid in dt.neighbors(nb)


@pytest.mark.parametrize("seed", range(12))
def test_matches_scipy_on_continuous_points(seed):
    """On generic (continuous) inputs our adjacency equals scipy's.

    Seeded uniform draws, not a hypothesis strategy: hypothesis shrinks
    towards *near*-degenerate configurations (points a few ulps off a line
    or circle), where Qhull's tolerancing legitimately merges or flips
    what the exact predicates resolve exactly — a disagreement about
    scipy's tolerance, not about our kernel.  Uniform random points are
    generic with probability one, which is precisely the comparison this
    test is after; exact-degeneracy behaviour is covered scipy-free by the
    property tests above.
    """
    rng = np.random.default_rng(seed)
    count = int(rng.integers(4, 40))
    points = [tuple(p) for p in rng.random((count, 2))]
    dt = build(points)
    assert compare_with_scipy(dt) == []


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point_sets, st.randoms(use_true_random=False))
def test_deletion_keeps_structure_valid(points, rnd):
    """Deleting any subset in any order keeps the structure valid."""
    dt = build(points)
    ids = dt.vertex_ids()
    rnd.shuffle(ids)
    for victim in ids[: len(ids) // 2]:
        dt.remove(victim)
        dt.validate()
    assert len(dt) == len(points) - len(ids[: len(ids) // 2])


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(continuous_sets, continuous_point)
def test_nearest_vertex_is_truly_nearest(points, query):
    """Greedy location always returns (one of) the closest vertices."""
    dt = build(points)
    reported = dt.nearest_vertex(query)
    best = min(dt.vertex_ids(), key=lambda v: distance_sq(dt.point(v), query))
    assert distance_sq(dt.point(reported), query) <= distance_sq(
        dt.point(best), query) + 1e-15

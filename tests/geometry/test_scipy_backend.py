"""Unit tests for the scipy cross-check backend."""

import numpy as np
import pytest

from repro.geometry.delaunay import DelaunayTriangulation
from repro.geometry.scipy_backend import (
    adjacency_of,
    build_reference_triangulation,
    compare_with_scipy,
    scipy_delaunay_adjacency,
)


class TestScipyAdjacency:
    def test_triangle(self):
        adjacency = scipy_delaunay_adjacency([(0, 0), (1, 0), (0.5, 1)])
        assert adjacency == {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            scipy_delaunay_adjacency([(0, 0), (1, 1)])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            scipy_delaunay_adjacency(np.zeros((4, 3)))

    def test_symmetry(self):
        points = [tuple(p) for p in np.random.default_rng(0).random((50, 2))]
        adjacency = scipy_delaunay_adjacency(points)
        for node, neighbors in adjacency.items():
            for nb in neighbors:
                assert node in adjacency[nb]


class TestComparison:
    def test_compare_identical(self, triangulation):
        assert compare_with_scipy(triangulation) == []

    def test_adjacency_of_matches_neighbors(self, triangulation):
        adjacency = adjacency_of(triangulation)
        for vid in triangulation.vertex_ids()[:20]:
            assert adjacency[vid] == set(triangulation.neighbors(vid))

    def test_compare_small_triangulation_is_trivially_ok(self):
        dt = DelaunayTriangulation([(0.1, 0.1), (0.9, 0.9)])
        assert compare_with_scipy(dt) == []

    def test_compare_detects_discrepancy(self, triangulation):
        # Sabotage one node's adjacency by monkeypatching neighbors().
        victim = triangulation.vertex_ids()[0]
        original = triangulation.neighbors

        def broken(vid):
            result = original(vid)
            if vid == victim and result:
                return result[:-1]
            return result

        triangulation.neighbors = broken  # type: ignore[assignment]
        problems = compare_with_scipy(triangulation)
        assert problems and any(f"vertex {victim}" in p for p in problems)

    def test_build_reference_triangulation(self, random_points):
        dt = build_reference_triangulation(random_points[:50])
        assert len(dt) == 50
        dt.validate()

"""Unit tests for Voronoi cell extraction."""


import numpy as np
import pytest

from repro.geometry.bounding import BoundingBox
from repro.geometry.delaunay import DelaunayTriangulation
from repro.geometry.point import distance
from repro.geometry.voronoi import (
    cell_of_point,
    total_cell_area,
    voronoi_cell,
    voronoi_cells,
)


@pytest.fixture
def five_site_triangulation():
    dt = DelaunayTriangulation()
    sites = [(0.2, 0.2), (0.8, 0.2), (0.5, 0.8), (0.5, 0.45), (0.25, 0.7)]
    ids = [dt.insert(p) for p in sites]
    return dt, ids, sites


class TestSingleCell:
    def test_interior_cell_is_bounded(self, five_site_triangulation):
        dt, ids, _ = five_site_triangulation
        cell = voronoi_cell(dt, ids[3])
        assert cell.bounded
        assert cell.area > 0

    def test_hull_cell_is_unbounded(self, five_site_triangulation):
        dt, ids, _ = five_site_triangulation
        cell = voronoi_cell(dt, ids[0])
        assert not cell.bounded
        assert cell.area > 0

    def test_cell_contains_its_site(self, five_site_triangulation):
        dt, ids, sites = five_site_triangulation
        for vid, site in zip(ids, sites):
            cell = voronoi_cell(dt, vid)
            assert cell.contains(site)

    def test_cell_vertex_equidistance(self, five_site_triangulation):
        """Interior cell polygon vertices are Voronoi vertices: equidistant to
        the site and (at least) one neighbouring site, never closer to any
        other site."""
        dt, ids, sites = five_site_triangulation
        cell = voronoi_cell(dt, ids[3], box=BoundingBox(-2, -2, 3, 3))
        for corner in cell.polygon:
            d_site = distance(corner, sites[3])
            others = [distance(corner, s) for i, s in enumerate(sites) if i != 3]
            assert min(others) >= d_site - 1e-9

    def test_degenerate_triangulation_gives_empty_polygon(self):
        dt = DelaunayTriangulation()
        a = dt.insert((0.2, 0.2))
        dt.insert((0.8, 0.8))
        cell = voronoi_cell(dt, a)
        assert cell.polygon == []
        assert not cell.bounded


class TestAllCells:
    def test_cells_tile_the_unit_square(self, five_site_triangulation):
        dt, _, _ = five_site_triangulation
        cells = voronoi_cells(dt)
        assert total_cell_area(cells) == pytest.approx(1.0, rel=1e-6)

    def test_cells_tile_for_random_points(self):
        rng = np.random.default_rng(8)
        dt = DelaunayTriangulation()
        for p in rng.random((80, 2)):
            dt.insert(tuple(p))
        cells = voronoi_cells(dt)
        assert total_cell_area(cells) == pytest.approx(1.0, rel=1e-5)

    def test_every_vertex_has_a_cell(self, five_site_triangulation):
        dt, ids, _ = five_site_triangulation
        cells = voronoi_cells(dt)
        assert set(cells) == set(ids)

    def test_cell_of_point_contains_point(self, five_site_triangulation):
        dt, _, _ = five_site_triangulation
        cell = cell_of_point(dt, (0.55, 0.5))
        assert cell.contains((0.55, 0.5))

    def test_cell_of_point_matches_nearest_site(self):
        rng = np.random.default_rng(3)
        dt = DelaunayTriangulation()
        ids = [dt.insert(tuple(p)) for p in rng.random((60, 2))]
        for _ in range(30):
            query = tuple(rng.random(2))
            cell = cell_of_point(dt, query)
            nearest = min(ids, key=lambda v: distance(dt.point(v), query))
            assert cell.vertex_id == nearest

"""Unit tests for the grid-bucket locate index."""

import math

import pytest

from repro.geometry.kdtree import KDTree
from repro.geometry.locate_grid import LocateGrid
from repro.geometry.point import distance


@pytest.fixture
def populated_grid(numpy_rng):
    grid = LocateGrid()
    points = {i: tuple(p) for i, p in enumerate(numpy_rng.random((300, 2)))}
    for vid, point in points.items():
        grid.insert(vid, point)
    return grid, points


class TestMembership:
    def test_empty_grid(self):
        grid = LocateGrid()
        assert len(grid) == 0
        assert grid.hint((0.5, 0.5)) is None
        assert grid.within((0.5, 0.5), 0.3) == []

    def test_insert_and_contains(self):
        grid = LocateGrid()
        grid.insert(3, (0.1, 0.9))
        assert 3 in grid and len(grid) == 1

    def test_duplicate_id_rejected(self):
        grid = LocateGrid()
        grid.insert(1, (0.2, 0.2))
        with pytest.raises(ValueError):
            grid.insert(1, (0.8, 0.8))

    def test_discard(self, populated_grid):
        grid, points = populated_grid
        grid.discard(17)
        assert 17 not in grid
        assert len(grid) == len(points) - 1
        grid.discard(17)  # idempotent
        assert len(grid) == len(points) - 1

    def test_invalid_occupancy_rejected(self):
        with pytest.raises(ValueError):
            LocateGrid(target_occupancy=0.0)

    def test_bulk_insert(self, numpy_rng):
        grid = LocateGrid()
        items = [(i, tuple(p)) for i, p in enumerate(numpy_rng.random((50, 2)))]
        grid.bulk_insert(items)
        assert len(grid) == 50
        for vid, point in items:
            assert grid.within(point, 0.0) == [vid]


class TestHint:
    def test_hint_is_a_member(self, populated_grid, numpy_rng):
        grid, points = populated_grid
        for _ in range(50):
            hint = grid.hint(tuple(numpy_rng.random(2)))
            assert hint in points

    def test_hint_is_near_the_target(self, populated_grid, numpy_rng):
        """The hint is within a couple of cell diagonals of the true nearest."""
        grid, points = populated_grid
        tree = KDTree(list(points.values()))
        cell = 1.0 / grid.cells_per_axis
        for _ in range(50):
            query = tuple(numpy_rng.random(2))
            hint = grid.hint(query)
            nearest = tree.nearest(query)
            slack = 3.0 * math.sqrt(2.0) * cell
            assert distance(points[hint], query) <= \
                distance(points[nearest], query) + slack

    def test_hint_with_query_outside_unit_square(self, populated_grid):
        grid, points = populated_grid
        for query in [(-3.0, 0.5), (0.5, 7.0), (2.0, -2.0)]:
            assert grid.hint(query) in points

    def test_hint_survives_heavy_removal(self, populated_grid):
        grid, points = populated_grid
        survivors = sorted(points)[:5]
        for vid in sorted(points)[5:]:
            grid.discard(vid)
        assert grid.hint((0.5, 0.5)) in survivors


class TestWithin:
    def test_matches_brute_force(self, populated_grid, numpy_rng):
        grid, points = populated_grid
        for radius in (0.01, 0.07, 0.25):
            for _ in range(20):
                query = tuple(numpy_rng.random(2))
                expected = {vid for vid, p in points.items()
                            if distance(p, query) <= radius}
                assert set(grid.within(query, radius)) == expected

    def test_zero_radius_finds_exact_point(self, populated_grid):
        grid, points = populated_grid
        vid = next(iter(points))
        assert grid.within(points[vid], 0.0) == [vid]

    def test_negative_radius_rejected(self, populated_grid):
        grid, _ = populated_grid
        with pytest.raises(ValueError):
            grid.within((0.5, 0.5), -0.1)


class TestResizing:
    def test_resolution_grows_with_population(self, numpy_rng):
        grid = LocateGrid()
        for i, p in enumerate(numpy_rng.random((400, 2))):
            grid.insert(i, tuple(p))
        assert grid.cells_per_axis > 4
        # Query correctness is preserved across every intermediate rebuild.
        assert grid.hint((0.5, 0.5)) is not None

    def test_resolution_shrinks_after_mass_departure(self, numpy_rng):
        grid = LocateGrid()
        for i, p in enumerate(numpy_rng.random((400, 2))):
            grid.insert(i, tuple(p))
        grown = grid.cells_per_axis
        for i in range(395):
            grid.discard(i)
        assert grid.cells_per_axis < grown
        assert len(grid) == 5

"""Unit tests for repro.geometry.point."""


import numpy as np
import pytest

from repro.geometry.point import (
    as_point,
    centroid,
    distance,
    distance_sq,
    distances_to,
    lerp,
    midpoint,
    nearest_index,
    nearly_equal,
    pairwise_distances,
    points_to_array,
)


class TestBasicOperations:
    def test_distance_matches_hypot(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = (0.12, 0.93), (0.7, 0.01)
        assert distance(a, b) == pytest.approx(distance(b, a))

    def test_distance_sq_is_square_of_distance(self):
        a, b = (0.3, 0.4), (0.9, 0.1)
        assert distance_sq(a, b) == pytest.approx(distance(a, b) ** 2)

    def test_zero_distance_to_self(self):
        p = (0.5, 0.5)
        assert distance(p, p) == 0.0
        assert distance_sq(p, p) == 0.0

    def test_midpoint(self):
        assert midpoint((0.0, 0.0), (1.0, 1.0)) == (0.5, 0.5)

    def test_lerp_endpoints_and_middle(self):
        a, b = (0.0, 1.0), (1.0, 3.0)
        assert lerp(a, b, 0.0) == a
        assert lerp(a, b, 1.0) == b
        assert lerp(a, b, 0.5) == (0.5, 2.0)

    def test_as_point_coerces_to_floats(self):
        assert as_point([1, 2]) == (1.0, 2.0)

    def test_as_point_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            as_point((1.0, 2.0, 3.0))

    def test_nearly_equal(self):
        assert nearly_equal((0.1, 0.2), (0.1 + 1e-14, 0.2))
        assert not nearly_equal((0.1, 0.2), (0.11, 0.2))


class TestVectorisedHelpers:
    def test_points_to_array_shape(self):
        array = points_to_array([(0.1, 0.2), (0.3, 0.4)])
        assert array.shape == (2, 2)

    def test_points_to_array_empty(self):
        assert points_to_array([]).shape == (0, 2)

    def test_points_to_array_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            points_to_array([(1.0, 2.0, 3.0)])

    def test_distances_to_matches_scalar(self):
        points = np.array([[0.0, 0.0], [0.3, 0.4], [1.0, 1.0]])
        target = (0.0, 0.0)
        expected = [distance(tuple(p), target) for p in points]
        np.testing.assert_allclose(distances_to(points, target), expected)

    def test_pairwise_distances_symmetry_and_diagonal(self):
        points = np.random.default_rng(0).random((20, 2))
        matrix = pairwise_distances(points)
        assert matrix.shape == (20, 20)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_nearest_index(self):
        points = np.array([[0.0, 0.0], [0.5, 0.5], [0.9, 0.9]])
        assert nearest_index(points, (0.52, 0.48)) == 1

    def test_centroid(self):
        assert centroid([(0.0, 0.0), (1.0, 0.0), (0.5, 1.5)]) == (0.5, 0.5)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

"""Unit tests for the kd-tree nearest-neighbour oracle."""


import numpy as np
import pytest

from repro.geometry.bounding import BoundingBox
from repro.geometry.kdtree import KDTree
from repro.geometry.point import distance


@pytest.fixture
def points():
    return [tuple(p) for p in np.random.default_rng(1).random((200, 2))]


@pytest.fixture
def tree(points):
    return KDTree(points)


class TestNearest:
    def test_nearest_matches_brute_force(self, tree, points):
        rng = np.random.default_rng(2)
        for _ in range(100):
            query = tuple(rng.random(2))
            reported = tree.nearest(query)
            best = min(range(len(points)), key=lambda i: distance(points[i], query))
            assert distance(points[reported], query) == pytest.approx(
                distance(points[best], query))

    def test_nearest_of_existing_point_is_itself(self, tree, points):
        assert tree.nearest(points[17]) == 17

    def test_nearest_empty_raises(self):
        with pytest.raises(ValueError):
            KDTree([]).nearest((0.5, 0.5))

    def test_nearest_distance(self, tree, points):
        query = (0.25, 0.75)
        index = tree.nearest(query)
        assert tree.nearest_distance(query) == pytest.approx(distance(points[index], query))

    def test_len(self, tree, points):
        assert len(tree) == len(points)


class TestRadiusAndBox:
    def test_query_radius_matches_brute_force(self, tree, points):
        center, radius = (0.4, 0.6), 0.15
        expected = sorted(i for i, p in enumerate(points)
                          if distance(p, center) <= radius)
        assert tree.query_radius(center, radius) == expected

    def test_query_radius_zero(self, tree, points):
        assert tree.query_radius(points[3], 0.0) == [3]

    def test_query_radius_negative_raises(self, tree):
        with pytest.raises(ValueError):
            tree.query_radius((0.5, 0.5), -0.1)

    def test_query_box_matches_brute_force(self, tree, points):
        box = BoundingBox(0.2, 0.3, 0.5, 0.8)
        expected = sorted(i for i, p in enumerate(points)
                          if box.xmin <= p[0] <= box.xmax and box.ymin <= p[1] <= box.ymax)
        assert tree.query_box(box) == expected

    def test_query_box_empty_result(self, tree):
        box = BoundingBox(2.0, 2.0, 3.0, 3.0)
        assert tree.query_box(box) == []


class TestKNearest:
    def test_k_nearest_ordering(self, tree, points):
        query = (0.5, 0.5)
        ranked = tree.k_nearest(query, 10)
        dists = [distance(points[i], query) for i in ranked]
        assert dists == sorted(dists)

    def test_k_nearest_zero(self, tree):
        assert tree.k_nearest((0.5, 0.5), 0) == []

    def test_k_nearest_more_than_size(self, points):
        small = KDTree(points[:5])
        assert len(small.k_nearest((0.5, 0.5), 50)) == 5

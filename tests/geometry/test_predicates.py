"""Unit tests for the robust geometric predicates."""

import math
from fractions import Fraction

import pytest

from repro.geometry.predicates import (
    circumcenter,
    circumradius,
    collinear,
    incircle,
    orient2d,
    point_in_polygon,
    point_in_triangle,
    segment_contains,
    triangle_area,
)


class TestOrient2d:
    def test_counterclockwise(self):
        assert orient2d((0, 0), (1, 0), (0, 1)) == 1

    def test_clockwise(self):
        assert orient2d((0, 0), (0, 1), (1, 0)) == -1

    def test_collinear(self):
        assert orient2d((0, 0), (0.5, 0.5), (1, 1)) == 0

    def test_antisymmetry(self):
        a, b, c = (0.1, 0.7), (0.4, 0.2), (0.9, 0.9)
        assert orient2d(a, b, c) == -orient2d(b, a, c)

    def test_cyclic_invariance(self):
        a, b, c = (0.1, 0.7), (0.4, 0.2), (0.9, 0.9)
        assert orient2d(a, b, c) == orient2d(b, c, a) == orient2d(c, a, b)

    def test_near_degenerate_uses_exact_path(self):
        # Points nearly collinear: the float determinant is ~1e-17 but the
        # exact sign is well defined and must be stable.
        a = (0.1, 0.1)
        b = (0.3, 0.3)
        c = (0.5, 0.5 + 1e-18)
        result = orient2d(a, b, c)
        # Exact rational evaluation of the same determinant.
        ax, ay, bx, by, cx, cy = map(Fraction, (*a, *b, *c))
        det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
        expected = 1 if det > 0 else (-1 if det < 0 else 0)
        assert result == expected

    def test_exactly_collinear_large_coordinates(self):
        assert orient2d((1e9, 1e9), (2e9, 2e9), (3e9, 3e9)) == 0


class TestIncircle:
    def test_point_inside(self):
        # Unit circle through (1,0), (0,1), (-1,0); origin is inside.
        assert incircle((1, 0), (0, 1), (-1, 0), (0, 0)) == 1

    def test_point_outside(self):
        assert incircle((1, 0), (0, 1), (-1, 0), (0, -5)) == -1

    def test_point_on_circle_is_zero(self):
        assert incircle((1, 0), (0, 1), (-1, 0), (0, -1)) == 0

    def test_orientation_flip_changes_sign(self):
        inside = incircle((1, 0), (0, 1), (-1, 0), (0, 0))
        flipped = incircle((0, 1), (1, 0), (-1, 0), (0, 0))
        assert inside == -flipped

    def test_near_cocircular_is_deterministic(self):
        a, b, c = (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)
        d_in = (0.0, -1.0 + 1e-13)
        d_out = (0.0, -1.0 - 1e-13)
        assert incircle(a, b, c, d_in) == 1
        assert incircle(a, b, c, d_out) == -1


class TestCircumcircle:
    def test_circumcenter_equidistant(self):
        a, b, c = (0.1, 0.2), (0.9, 0.3), (0.4, 0.8)
        center = circumcenter(a, b, c)
        da = math.dist(center, a)
        db = math.dist(center, b)
        dc = math.dist(center, c)
        assert da == pytest.approx(db)
        assert db == pytest.approx(dc)

    def test_circumcenter_of_collinear_is_none(self):
        assert circumcenter((0, 0), (1, 1), (2, 2)) is None

    def test_circumradius_right_triangle(self):
        # Right triangle: circumradius is half the hypotenuse.
        assert circumradius((0, 0), (2, 0), (0, 2)) == pytest.approx(math.sqrt(2))

    def test_circumradius_collinear_is_infinite(self):
        assert circumradius((0, 0), (1, 1), (2, 2)) == math.inf


class TestContainmentHelpers:
    def test_point_in_triangle_interior(self):
        assert point_in_triangle((0.3, 0.3), (0, 0), (1, 0), (0, 1))

    def test_point_in_triangle_boundary(self):
        assert point_in_triangle((0.5, 0.0), (0, 0), (1, 0), (0, 1))

    def test_point_outside_triangle(self):
        assert not point_in_triangle((0.9, 0.9), (0, 0), (1, 0), (0, 1))

    def test_point_in_triangle_either_orientation(self):
        assert point_in_triangle((0.3, 0.3), (0, 0), (0, 1), (1, 0))

    def test_triangle_area(self):
        assert triangle_area((0, 0), (1, 0), (0, 1)) == pytest.approx(0.5)

    def test_segment_contains_strict(self):
        assert segment_contains((0, 0), (1, 1), (0.5, 0.5))
        assert not segment_contains((0, 0), (1, 1), (0, 0))
        assert not segment_contains((0, 0), (1, 1), (2, 2))

    def test_segment_contains_inclusive(self):
        assert segment_contains((0, 0), (1, 1), (0, 0), strict=False)

    def test_segment_contains_requires_collinearity(self):
        assert not segment_contains((0, 0), (1, 1), (0.5, 0.6))

    def test_collinear_helper(self):
        assert collinear((0, 0), (1, 2), (2, 4))
        assert not collinear((0, 0), (1, 2), (2, 4.001))


class TestPointInPolygon:
    SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]

    def test_interior_and_exterior(self):
        assert point_in_polygon((0.5, 0.5), self.SQUARE)
        assert not point_in_polygon((1.5, 0.5), self.SQUARE)
        assert not point_in_polygon((0.5, -0.1), self.SQUARE)

    def test_boundary_points_are_inside_by_default(self):
        """Regression: the bare ray cast called on-edge points outside."""
        assert point_in_polygon((1.0, 0.5), self.SQUARE)   # right edge
        assert point_in_polygon((0.5, 0.0), self.SQUARE)   # bottom edge
        assert point_in_polygon((0.0, 0.25), self.SQUARE)  # left edge
        assert point_in_polygon((0.0, 0.0), self.SQUARE)   # vertex
        assert point_in_polygon((1.0, 1.0), self.SQUARE)   # vertex

    def test_boundary_exclusion_opt_out(self):
        assert not point_in_polygon((1.0, 0.5), self.SQUARE,
                                    include_boundary=False)
        assert point_in_polygon((0.5, 0.5), self.SQUARE,
                                include_boundary=False)

    def test_non_convex_polygon(self):
        arrow = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (1.0, 0.5), (0.0, 2.0)]
        assert point_in_polygon((0.2, 0.3), arrow)
        assert not point_in_polygon((1.0, 1.5), arrow)  # inside the notch
        assert point_in_polygon((1.0, 0.5), arrow)      # notch vertex

    def test_empty_polygon(self):
        assert not point_in_polygon((0.5, 0.5), [])

"""Unit tests for the incremental Delaunay kernel."""


import numpy as np
import pytest

from repro.geometry.delaunay import (
    INFINITE_VERTEX,
    DelaunayTriangulation,
    DuplicatePointError,
)
from repro.geometry.point import distance_sq
from repro.geometry.scipy_backend import compare_with_scipy


def build(points):
    dt = DelaunayTriangulation()
    ids = [dt.insert(p) for p in points]
    return dt, ids


class TestSmallConfigurations:
    def test_empty(self):
        dt = DelaunayTriangulation()
        assert len(dt) == 0
        assert not dt.has_triangulation

    def test_single_point_has_no_neighbors(self):
        dt, ids = build([(0.5, 0.5)])
        assert dt.neighbors(ids[0]) == []
        assert dt.nearest_vertex((0.1, 0.9)) == ids[0]

    def test_two_points_are_mutual_neighbors(self):
        dt, ids = build([(0.2, 0.2), (0.8, 0.8)])
        assert dt.neighbors(ids[0]) == [ids[1]]
        assert dt.neighbors(ids[1]) == [ids[0]]

    def test_three_points_triangle(self):
        dt, ids = build([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9)])
        assert dt.has_triangulation
        assert dt.triangle_count() == 1
        for vid in ids:
            assert sorted(dt.neighbors(vid)) == sorted(i for i in ids if i != vid)

    def test_collinear_points_form_a_path(self):
        dt, ids = build([(0.1, 0.1), (0.2, 0.2), (0.3, 0.3), (0.4, 0.4)])
        assert not dt.has_triangulation
        assert sorted(dt.neighbors(ids[0])) == [ids[1]]
        assert sorted(dt.neighbors(ids[1])) == sorted([ids[0], ids[2]])
        assert sorted(dt.neighbors(ids[2])) == sorted([ids[1], ids[3]])

    def test_collinear_then_offline_point_bootstraps(self):
        dt, ids = build([(0.1, 0.1), (0.2, 0.2), (0.3, 0.3)])
        assert not dt.has_triangulation
        extra = dt.insert((0.5, 0.1))
        assert dt.has_triangulation
        dt.validate()
        assert extra in dt.neighbors(ids[0]) or ids[0] in dt.neighbors(extra)

    def test_square_has_five_edges(self):
        dt, _ = build([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
        # 4 hull edges + 1 diagonal.
        assert len(list(dt.edges())) == 5
        assert dt.triangle_count() == 2


class TestInsertion:
    def test_insert_returns_sequential_ids(self):
        dt, ids = build([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9)])
        assert ids == [0, 1, 2]

    def test_insert_with_explicit_id(self):
        dt = DelaunayTriangulation()
        vid = dt.insert((0.5, 0.5), vertex_id=42)
        assert vid == 42
        assert 42 in dt

    def test_insert_rejects_id_reuse(self):
        dt = DelaunayTriangulation()
        dt.insert((0.5, 0.5), vertex_id=1)
        with pytest.raises(ValueError):
            dt.insert((0.6, 0.6), vertex_id=1)

    def test_insert_rejects_negative_id(self):
        dt = DelaunayTriangulation()
        with pytest.raises(ValueError):
            dt.insert((0.5, 0.5), vertex_id=-3)

    def test_duplicate_point_raises(self):
        dt = DelaunayTriangulation()
        dt.insert((0.5, 0.5))
        with pytest.raises(DuplicatePointError):
            dt.insert((0.5, 0.5))

    def test_insert_outside_current_hull(self):
        dt, _ = build([(0.4, 0.4), (0.6, 0.4), (0.5, 0.6)])
        outside = dt.insert((0.95, 0.95))
        dt.validate()
        assert outside in dt.vertex_ids()
        assert len(dt.neighbors(outside)) >= 2

    def test_insert_with_hint_gives_same_structure(self):
        rng = np.random.default_rng(3)
        points = [tuple(p) for p in rng.random((120, 2))]
        plain = DelaunayTriangulation()
        for p in points:
            plain.insert(p)
        hinted = DelaunayTriangulation()
        previous = None
        for p in points:
            previous = hinted.insert(p, hint=previous)
        plain_adj = {v: set(plain.neighbors(v)) for v in plain.vertex_ids()}
        hinted_adj = {v: set(hinted.neighbors(v)) for v in hinted.vertex_ids()}
        assert plain_adj == hinted_adj

    def test_matches_scipy_on_random_points(self, random_points):
        dt, _ = build(random_points)
        assert compare_with_scipy(dt) == []

    def test_validate_passes_after_many_inserts(self, triangulation):
        triangulation.validate()

    def test_mean_degree_below_six(self, triangulation):
        degrees = [triangulation.degree(v) for v in triangulation.vertex_ids()]
        assert 4.0 < np.mean(degrees) < 6.0  # strictly below 6 for finite sets


class TestDeletion:
    def test_remove_unknown_vertex_raises(self):
        dt, _ = build([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9)])
        with pytest.raises(KeyError):
            dt.remove(99)

    def test_remove_interior_vertex(self):
        dt, ids = build([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9), (0.5, 0.4)])
        dt.remove(ids[3])
        dt.validate()
        assert ids[3] not in dt
        assert dt.triangle_count() == 1

    def test_remove_hull_vertex(self):
        dt, ids = build([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9), (0.5, 0.4)])
        dt.remove(ids[0])
        dt.validate()
        assert len(dt) == 3

    def test_remove_down_to_two_points(self):
        dt, ids = build([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9)])
        dt.remove(ids[0])
        assert sorted(dt.neighbors(ids[1])) == [ids[2]]

    def test_remove_then_reinsert_same_position(self):
        dt, ids = build([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9), (0.5, 0.4)])
        dt.remove(ids[3])
        new_id = dt.insert((0.5, 0.4))
        dt.validate()
        assert new_id != ids[3] or new_id == ids[3]  # id policy free, structure valid

    def test_deletions_match_scipy(self, random_points):
        dt, ids = build(random_points)
        rng = np.random.default_rng(9)
        victims = rng.choice(ids, size=80, replace=False)
        for victim in victims:
            dt.remove(int(victim))
        dt.validate()
        assert compare_with_scipy(dt) == []

    def test_interleaved_churn_matches_scipy(self):
        rng = np.random.default_rng(11)
        dt = DelaunayTriangulation()
        alive = []
        for _ in range(600):
            if alive and rng.random() < 0.35:
                victim = alive.pop(int(rng.integers(len(alive))))
                dt.remove(victim)
            else:
                alive.append(dt.insert(tuple(rng.random(2))))
        dt.validate()
        assert compare_with_scipy(dt) == []


class TestLocation:
    def test_nearest_vertex_matches_brute_force(self, triangulation):
        rng = np.random.default_rng(5)
        ids = triangulation.vertex_ids()
        for _ in range(100):
            query = tuple(rng.random(2))
            reported = triangulation.nearest_vertex(query)
            best = min(ids, key=lambda v: distance_sq(triangulation.point(v), query))
            assert distance_sq(triangulation.point(reported), query) == pytest.approx(
                distance_sq(triangulation.point(best), query))

    def test_nearest_vertex_with_hint(self, triangulation):
        ids = triangulation.vertex_ids()
        query = (0.31, 0.62)
        without = triangulation.nearest_vertex(query)
        with_hint = triangulation.nearest_vertex(query, hint=ids[0])
        assert distance_sq(triangulation.point(without), query) == pytest.approx(
            distance_sq(triangulation.point(with_hint), query))

    def test_locate_is_alias(self, triangulation):
        query = (0.77, 0.18)
        assert triangulation.locate(query) == triangulation.nearest_vertex(query)

    def test_nearest_vertex_empty_raises(self):
        with pytest.raises(ValueError):
            DelaunayTriangulation().nearest_vertex((0.5, 0.5))

    def test_nearest_vertex_outside_square(self, triangulation):
        ids = triangulation.vertex_ids()
        query = (1.8, 1.8)
        reported = triangulation.nearest_vertex(query)
        best = min(ids, key=lambda v: distance_sq(triangulation.point(v), query))
        assert distance_sq(triangulation.point(reported), query) == pytest.approx(
            distance_sq(triangulation.point(best), query))


class TestStructure:
    def test_star_ring_is_cyclic_and_consistent(self, triangulation):
        for vid in triangulation.vertex_ids()[:30]:
            ring = triangulation.star_ring(vid)
            finite = [v for v in ring if v != INFINITE_VERTEX]
            assert set(finite) == set(triangulation.neighbors(vid))
            assert len(ring) == len(set(ring))

    def test_hull_vertices_have_infinite_in_ring(self, triangulation):
        hull = [v for v in triangulation.vertex_ids() if triangulation.is_hull_vertex(v)]
        assert 3 <= len(hull) < len(triangulation)
        for vid in hull[:10]:
            assert INFINITE_VERTEX in triangulation.star_ring(vid)

    def test_incident_triangles_contain_vertex(self, triangulation):
        vid = triangulation.vertex_ids()[10]
        for tri in triangulation.incident_triangles(vid):
            assert vid in tri

    def test_edges_are_unique_and_sorted(self, triangulation):
        edges = list(triangulation.edges())
        assert len(edges) == len(set(edges))
        assert all(u < v for u, v in edges)

    def test_euler_formula(self, triangulation):
        # Planar triangulation of a point set: V - E + F = 2 where F counts
        # the outer face; F = triangles + 1.
        v = len(triangulation)
        e = len(list(triangulation.edges()))
        f = triangulation.triangle_count() + 1
        assert v - e + f == 2

    def test_degree_histogram_totals(self, triangulation):
        histogram = triangulation.degree_histogram()
        assert sum(histogram.values()) == len(triangulation)

    def test_points_accessor_copies(self, triangulation):
        points = triangulation.points()
        points[999999] = (0.0, 0.0)
        assert 999999 not in triangulation

    def test_vertex_at_exact_coordinates(self):
        dt, ids = build([(0.25, 0.75), (0.5, 0.5), (0.9, 0.1)])
        assert dt.vertex_at((0.25, 0.75)) == ids[0]
        assert dt.vertex_at((0.1, 0.1)) is None

    def test_rebuild_preserves_adjacency(self, triangulation):
        before = {v: set(triangulation.neighbors(v)) for v in triangulation.vertex_ids()}
        triangulation.rebuild()
        after = {v: set(triangulation.neighbors(v)) for v in triangulation.vertex_ids()}
        assert before == after


class TestStressConfigurations:
    def test_grid_with_cocircular_points(self):
        # A perfect lattice has many cocircular quadruples; the kernel must
        # stay structurally valid even if tie-breaking is arbitrary.
        dt = DelaunayTriangulation()
        for i in range(6):
            for j in range(6):
                dt.insert((i / 5.0, j / 5.0))
        dt.validate()
        assert len(dt) == 36

    def test_clustered_points(self):
        rng = np.random.default_rng(2)
        dt = DelaunayTriangulation()
        cluster = 0.5 + rng.random((150, 2)) * 1e-4
        for p in cluster:
            dt.insert(tuple(p))
        dt.validate()
        assert compare_with_scipy(dt) == []

    def test_points_on_two_scales(self):
        # Mixing unit-scale points with a 1e-5-wide cluster produces nearly
        # cocircular circumcircles where Qhull's merged-facet output can
        # legitimately differ from the exact answer, so we do not compare
        # against scipy here; we assert our own exact invariants instead.
        rng = np.random.default_rng(4)
        dt = DelaunayTriangulation()
        for p in rng.random((50, 2)):
            dt.insert(tuple(p))
        for p in 0.3 + rng.random((50, 2)) * 1e-5:
            dt.insert(tuple(p))
        dt.validate()
        for vid in dt.vertex_ids():
            for nb in dt.neighbors(vid):
                assert vid in dt.neighbors(nb)


class TestBulkInsert:
    def test_same_triangulation_as_sequential(self):
        rng = np.random.default_rng(11)
        points = [tuple(p) for p in rng.random((200, 2))]
        sequential = DelaunayTriangulation()
        for p in points:
            sequential.insert(p)
        bulk = DelaunayTriangulation()
        ids = bulk.bulk_insert(points)
        assert ids == list(range(200))
        bulk.validate()
        assert compare_with_scipy(bulk) == []
        for vid in sequential.vertex_ids():
            assert sorted(bulk.neighbors(vid)) == sorted(sequential.neighbors(vid))

    def test_explicit_vertex_ids_follow_input_order(self):
        bulk = DelaunayTriangulation()
        ids = bulk.bulk_insert([(0.9, 0.9), (0.1, 0.1), (0.5, 0.2)],
                               vertex_ids=[7, 3, 5])
        assert ids == [7, 3, 5]
        assert bulk.point(7) == (0.9, 0.9)
        assert bulk.point(3) == (0.1, 0.1)

    def test_bulk_into_existing_triangulation(self):
        rng = np.random.default_rng(12)
        dt = DelaunayTriangulation()
        for p in rng.random((40, 2)):
            dt.insert(tuple(p))
        dt.bulk_insert([tuple(p) for p in rng.random((60, 2))])
        dt.validate()
        assert compare_with_scipy(dt) == []

    def test_duplicate_in_batch_rejected_without_mutation(self):
        dt = DelaunayTriangulation()
        dt.insert((0.5, 0.5))
        with pytest.raises(DuplicatePointError):
            dt.bulk_insert([(0.1, 0.1), (0.5, 0.5)])
        assert len(dt) == 1
        with pytest.raises(DuplicatePointError):
            dt.bulk_insert([(0.2, 0.2), (0.2, 0.2)])
        assert len(dt) == 1

    def test_mismatched_or_reused_ids_rejected(self):
        dt = DelaunayTriangulation()
        dt.insert((0.5, 0.5))  # takes id 0
        with pytest.raises(ValueError):
            dt.bulk_insert([(0.1, 0.1)], vertex_ids=[0])
        with pytest.raises(ValueError):
            dt.bulk_insert([(0.1, 0.1), (0.2, 0.2)], vertex_ids=[1])
        with pytest.raises(ValueError):
            dt.bulk_insert([(0.1, 0.1), (0.2, 0.2)], vertex_ids=[1, 1])

    def test_degenerate_batches(self):
        collinear_dt = DelaunayTriangulation()
        collinear_dt.bulk_insert([(0.1, 0.1), (0.2, 0.2), (0.3, 0.3)])
        assert not collinear_dt.has_triangulation
        assert sorted(collinear_dt.neighbors(1)) == [0, 2]
        tiny = DelaunayTriangulation()
        assert tiny.bulk_insert([(0.4, 0.6)]) == [0]
        assert tiny.bulk_insert([]) == []


class TestDegreeMap:
    def test_matches_per_vertex_degrees(self):
        rng = np.random.default_rng(13)
        dt = DelaunayTriangulation()
        dt.bulk_insert([tuple(p) for p in rng.random((120, 2))])
        degrees = dt.degree_map()
        assert degrees == {vid: dt.degree(vid) for vid in dt.vertex_ids()}

    def test_degenerate_point_set(self):
        dt = DelaunayTriangulation()
        dt.insert((0.1, 0.1))
        dt.insert((0.2, 0.2))
        assert dt.degree_map() == {0: 1, 1: 1}

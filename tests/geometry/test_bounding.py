"""Unit tests for bounding boxes and polygon clipping."""

import pytest

from repro.geometry.bounding import (
    UNIT_SQUARE,
    BoundingBox,
    clip_polygon_to_box,
    polygon_area,
)
from repro.utils.rng import RandomSource


class TestBoundingBox:
    def test_unit_square_dimensions(self):
        assert UNIT_SQUARE.width == 1.0
        assert UNIT_SQUARE.height == 1.0
        assert UNIT_SQUARE.area == 1.0
        assert UNIT_SQUARE.center == (0.5, 0.5)

    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_contains_inclusive(self):
        assert UNIT_SQUARE.contains((0.0, 0.0))
        assert UNIT_SQUARE.contains((1.0, 1.0))
        assert not UNIT_SQUARE.contains((1.0001, 0.5))

    def test_contains_with_tolerance(self):
        assert UNIT_SQUARE.contains((1.0001, 0.5), tolerance=0.001)

    def test_clamp(self):
        assert UNIT_SQUARE.clamp((1.5, -0.2)) == (1.0, 0.0)
        assert UNIT_SQUARE.clamp((0.4, 0.6)) == (0.4, 0.6)

    def test_corners_ccw(self):
        corners = BoundingBox(0, 0, 2, 1).corners
        assert corners == ((0, 0), (2, 0), (2, 1), (0, 1))

    def test_expanded(self):
        box = UNIT_SQUARE.expanded(0.5)
        assert box.xmin == -0.5 and box.xmax == 1.5

    def test_sample_inside(self):
        rng = RandomSource(3)
        box = BoundingBox(0.2, 0.3, 0.4, 0.9)
        for _ in range(50):
            assert box.contains(box.sample(rng))


class TestClipping:
    def test_polygon_inside_box_unchanged(self):
        triangle = [(0.2, 0.2), (0.6, 0.2), (0.4, 0.5)]
        clipped = clip_polygon_to_box(triangle, UNIT_SQUARE)
        assert polygon_area(clipped) == pytest.approx(polygon_area(triangle))

    def test_polygon_outside_box_empty(self):
        triangle = [(2.0, 2.0), (3.0, 2.0), (2.5, 3.0)]
        assert clip_polygon_to_box(triangle, UNIT_SQUARE) == []

    def test_half_overlapping_square(self):
        square = [(0.5, 0.25), (1.5, 0.25), (1.5, 0.75), (0.5, 0.75)]
        clipped = clip_polygon_to_box(square, UNIT_SQUARE)
        assert polygon_area(clipped) == pytest.approx(0.25)

    def test_clip_huge_polygon_to_unit_square(self):
        big = [(-10, -10), (10, -10), (10, 10), (-10, 10)]
        clipped = clip_polygon_to_box(big, UNIT_SQUARE)
        assert polygon_area(clipped) == pytest.approx(1.0)

    def test_clip_empty_polygon(self):
        assert clip_polygon_to_box([], UNIT_SQUARE) == []

    def test_polygon_area_shoelace(self):
        assert polygon_area([(0, 0), (1, 0), (1, 1), (0, 1)]) == pytest.approx(1.0)
        assert polygon_area([(0, 0), (1, 0)]) == 0.0

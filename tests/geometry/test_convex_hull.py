"""Unit tests for convex hulls."""

import numpy as np

from repro.geometry.convex_hull import (
    convex_hull,
    hull_vertices_of,
    point_in_convex_polygon,
)
from repro.geometry.predicates import orient2d


class TestConvexHull:
    def test_triangle_hull_is_itself(self):
        points = [(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]
        hull = convex_hull(points)
        assert set(hull) == set(points)

    def test_interior_points_excluded(self):
        points = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5), (0.2, 0.7)]
        hull = convex_hull(points)
        assert set(hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_hull_is_counterclockwise(self):
        rng = np.random.default_rng(2)
        points = [tuple(p) for p in rng.random((50, 2))]
        hull = convex_hull(points)
        for i in range(len(hull)):
            a, b, c = hull[i], hull[(i + 1) % len(hull)], hull[(i + 2) % len(hull)]
            assert orient2d(a, b, c) > 0

    def test_collinear_points_collapse_to_extremes(self):
        points = [(0.1 * i, 0.1 * i) for i in range(5)]
        hull = convex_hull(points)
        assert hull == [(0.0, 0.0), (0.4, 0.4)]

    def test_duplicates_tolerated(self):
        points = [(0, 0), (1, 0), (0.5, 1), (1, 0), (0, 0)]
        assert len(convex_hull(points)) == 3

    def test_two_points(self):
        assert convex_hull([(0.3, 0.3), (0.8, 0.1)]) == [(0.3, 0.3), (0.8, 0.1)]

    def test_all_points_inside_hull(self):
        rng = np.random.default_rng(7)
        points = [tuple(p) for p in rng.random((100, 2))]
        hull = convex_hull(points)
        for p in points:
            assert point_in_convex_polygon(p, hull)


class TestPointInConvexPolygon:
    def test_inside_and_outside(self):
        square = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert point_in_convex_polygon((0.5, 0.5), square)
        assert point_in_convex_polygon((0.0, 0.5), square)
        assert not point_in_convex_polygon((1.5, 0.5), square)

    def test_empty_polygon(self):
        assert not point_in_convex_polygon((0.5, 0.5), [])

    def test_single_point_polygon(self):
        assert point_in_convex_polygon((0.5, 0.5), [(0.5, 0.5)])
        assert not point_in_convex_polygon((0.4, 0.5), [(0.5, 0.5)])

    def test_segment_polygon(self):
        assert point_in_convex_polygon((0.5, 0.5), [(0, 0), (1, 1)])
        assert not point_in_convex_polygon((0.5, 0.6), [(0, 0), (1, 1)])


class TestHullVertexIndices:
    def test_indices_match_hull(self):
        points = [(0, 0), (1, 0), (0.5, 0.5), (1, 1), (0, 1)]
        indices = hull_vertices_of(points)
        assert sorted(indices) == [0, 1, 3, 4]

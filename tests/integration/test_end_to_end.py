"""Integration tests exercising the public API end to end."""

import math

import numpy as np
import pytest

from repro import VoroNet, VoroNetConfig, point_query, radius_query, range_query
from repro.analysis.degree import degree_summary
from repro.analysis.hops import measure_routing
from repro.geometry.bounding import BoundingBox
from repro.geometry.kdtree import KDTree
from repro.geometry.point import distance
from repro.utils.rng import RandomSource
from repro.workloads.churn import generate_churn_trace, replay_churn
from repro.workloads.distributions import PowerLawDistribution, UniformDistribution
from repro.workloads.generators import generate_objects, generate_routing_pairs


@pytest.fixture(scope="module", params=["uniform", "powerlaw-a5"])
def populated_overlay(request):
    """A 600-object overlay built from a paper workload distribution."""
    if request.param == "uniform":
        distribution = UniformDistribution()
    else:
        distribution = PowerLawDistribution(alpha=5.0)
    rng = RandomSource(101)
    positions = generate_objects(distribution, 600, rng)
    overlay = VoroNet(VoroNetConfig(n_max=1200, seed=101))
    overlay.insert_many(positions)
    return overlay


class TestConstructionAndStructure:
    def test_all_objects_published(self, populated_overlay):
        assert len(populated_overlay) == 600

    def test_consistency(self, populated_overlay):
        assert populated_overlay.check_consistency() == []

    def test_degree_centred_near_six(self, populated_overlay):
        """The Figure 5 claim holds regardless of the distribution."""
        summary = degree_summary(populated_overlay.degree_histogram())
        assert 5.0 <= summary.mean <= 6.0
        assert 4 <= summary.mode <= 7

    def test_view_sizes_remain_constant_like(self, populated_overlay):
        """The O(1)-view-size claim (Section 4.1) holds for near-uniform
        placements.  Under the extreme α=5 concentration, close-neighbour
        sets legitimately grow with the hot-spot population — exactly the
        caveat of Section 4.1 and the motivation for the dynamic-d_min
        perspective — so only the Voronoi/long/back components are bounded
        there."""
        sizes = list(populated_overlay.view_sizes().values())
        non_close_sizes = [
            len(populated_overlay.voronoi_neighbors(oid))
            + len(populated_overlay.node(oid).long_links)
            + len(populated_overlay.node(oid).back_links)
            for oid in populated_overlay.object_ids()
        ]
        assert np.mean(non_close_sizes) < 15
        assert np.percentile(non_close_sizes, 95) < 30
        if max(sizes) < 50:  # uniform case: the full view is O(1) too
            assert np.mean(sizes) < 15


class TestRouting:
    def test_random_pair_routing_always_succeeds(self, populated_overlay):
        rng = RandomSource(7)
        pairs = generate_routing_pairs(populated_overlay.object_ids(), 150, rng)
        for a, b in pairs:
            result = populated_overlay.route(a, b)
            assert result.success and result.owner == b

    def test_mean_hops_well_below_sqrt_n(self, populated_overlay):
        """Long links keep routes far shorter than the Θ(√N) Delaunay walk."""
        stats = measure_routing(populated_overlay, 150, RandomSource(8))
        assert stats.mean < math.sqrt(len(populated_overlay))

    def test_lookup_matches_kdtree_ground_truth(self, populated_overlay):
        ids = populated_overlay.object_ids()
        positions = [populated_overlay.position_of(i) for i in ids]
        tree = KDTree(positions)
        rng = RandomSource(9)
        for _ in range(40):
            point = rng.random_point()
            owner = populated_overlay.lookup(point).owner
            expected = ids[tree.nearest(point)]
            assert distance(populated_overlay.position_of(owner), point) == \
                pytest.approx(distance(populated_overlay.position_of(expected), point))


class TestQueries:
    def test_range_query_matches_kdtree(self, populated_overlay):
        ids = populated_overlay.object_ids()
        positions = [populated_overlay.position_of(i) for i in ids]
        tree = KDTree(positions)
        box = BoundingBox(0.3, 0.35, 0.6, 0.62)
        result = range_query(populated_overlay, box)
        expected = sorted(ids[i] for i in tree.query_box(box))
        assert result.matches == expected

    def test_radius_query_matches_kdtree(self, populated_overlay):
        ids = populated_overlay.object_ids()
        positions = [populated_overlay.position_of(i) for i in ids]
        tree = KDTree(positions)
        result = radius_query(populated_overlay, (0.5, 0.5), 0.15)
        expected = sorted(ids[i] for i in tree.query_radius((0.5, 0.5), 0.15))
        assert result.matches == expected

    def test_point_query_owner(self, populated_overlay):
        result = point_query(populated_overlay, (0.21, 0.84))
        assert result.matches[0] == populated_overlay.owner_of((0.21, 0.84))


class TestChurn:
    def test_overlay_survives_heavy_churn(self):
        overlay = VoroNet(VoroNetConfig(n_max=600, seed=55))
        trace = generate_churn_trace(400, RandomSource(55), leave_probability=0.4)
        replay_churn(overlay, trace, RandomSource(56))
        assert overlay.check_consistency() == []
        rng = RandomSource(57)
        ids = overlay.object_ids()
        for _ in range(30):
            a, b = rng.choice(ids, size=2, replace=False)
            assert overlay.route(int(a), int(b)).success

"""Contract tests for the unified bench-regression gate.

The gate (``benchmarks/check_bench.py``) derives its floors from the
committed canonical ``BENCH_*.json`` records at run time, so the registry
and the records can drift apart silently — a renamed metric, a deleted
record, a tolerance typo — and the breakage would only surface in CI.
These tests pin the contract: every registered benchmark has a readable
canonical record, every gated metric resolves in it, and every tolerance
derives a floor the canonical run itself would clear.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import check_bench  # noqa: E402


@pytest.fixture(params=check_bench.REGISTRY, ids=lambda b: b.name)
def bench(request):
    return request.param


class TestRegistryContract:
    def test_canonical_record_exists(self, bench):
        path = BENCH_DIR / bench.canonical
        assert path.exists(), f"missing canonical record {bench.canonical}"
        record = json.loads(path.read_text())
        assert record.get("benchmark") == bench.name

    def test_gated_metrics_resolve_in_canonical(self, bench):
        record = json.loads((BENCH_DIR / bench.canonical).read_text())
        for floor in bench.floors:
            value = floor.resolve(record)
            assert value > 0, (bench.name, floor.metric)

    def test_canonical_clears_its_own_floor(self, bench):
        """floor = canonical x tolerance with tolerance in (0, 1]: the
        canonical record must trivially pass its own derived bar."""
        record = json.loads((BENCH_DIR / bench.canonical).read_text())
        for floor in bench.floors:
            assert 0.0 < floor.tolerance <= 1.0
            value = floor.resolve(record)
            assert value >= value * floor.tolerance

    def test_bench_module_importable_with_main(self, bench):
        """Every registered module must import and expose ``main(argv)``
        (the gate calls it in-process rather than shelling out)."""
        import importlib

        module = importlib.import_module(bench.module)
        assert callable(getattr(module, "main", None))


class TestFloorResolution:
    def test_nested_metric_paths(self):
        floor = check_bench.Floor("a.b.c", 0.5)
        assert floor.resolve({"a": {"b": {"c": 4.0}}}) == 4.0
        with pytest.raises(KeyError):
            floor.resolve({"a": {}})

    def test_registry_names_unique(self):
        names = [b.name for b in check_bench.REGISTRY]
        assert len(names) == len(set(names))

"""Cross-validation of the two execution modes.

The oracle-mode overlay (:class:`repro.core.overlay.VoroNet`) and the
message-level protocol simulator
(:class:`repro.simulation.protocol.ProtocolSimulator`) implement the same
protocol at two abstraction levels.  Feeding both the same object positions
must produce the same neighbour *structure* (the Voronoi adjacency and
close-neighbour sets are deterministic functions of the positions), and
both must route to the same owners.
"""

import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


@pytest.fixture(scope="module")
def both_modes():
    config = VoroNetConfig(n_max=300, seed=77)
    positions = generate_objects(UniformDistribution(), 120, RandomSource(77))
    oracle = VoroNet(config)
    oracle_ids = [oracle.insert(p) for p in positions]
    protocol = ProtocolSimulator(config, seed=77)
    protocol_ids = [protocol.join(p).object_id for p in positions]
    return oracle, oracle_ids, protocol, protocol_ids, positions


class TestStructuralEquivalence:
    def test_same_membership(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, _ = both_modes
        assert len(oracle) == len(protocol)

    def test_same_voronoi_adjacency(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, positions = both_modes
        # Both assign ids in insertion order, so index i maps to the same object.
        oracle_index = {oid: i for i, oid in enumerate(oracle_ids)}
        protocol_index = {oid: i for i, oid in enumerate(protocol_ids)}
        for i in range(len(positions)):
            oracle_nb = {oracle_index[n]
                         for n in oracle.voronoi_neighbors(oracle_ids[i])}
            protocol_nb = {protocol_index[n]
                           for n in protocol.kernel.neighbors(protocol_ids[i])}
            assert oracle_nb == protocol_nb

    def test_same_close_neighbor_sets(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, positions = both_modes
        oracle_index = {oid: i for i, oid in enumerate(oracle_ids)}
        protocol_index = {oid: i for i, oid in enumerate(protocol_ids)}
        for i in range(len(positions)):
            oracle_close = {oracle_index[n]
                            for n in oracle.node(oracle_ids[i]).close_neighbors}
            protocol_close = {protocol_index[n]
                              for n in protocol.node(protocol_ids[i]).close}
            assert oracle_close == protocol_close

    def test_both_modes_internally_consistent(self, both_modes):
        oracle, _, protocol, _, _ = both_modes
        assert oracle.check_consistency() == []
        assert protocol.verify_views() == []


class TestBehaviouralEquivalence:
    def test_same_lookup_owner(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, _ = both_modes
        oracle_index = {oid: i for i, oid in enumerate(oracle_ids)}
        protocol_index = {oid: i for i, oid in enumerate(protocol_ids)}
        rng = RandomSource(5)
        for _ in range(20):
            point = rng.random_point()
            oracle_owner = oracle_index[oracle.owner_of(point)]
            protocol_owner = protocol_index[protocol.query(point).owner]
            assert oracle_owner == protocol_owner

    def test_comparable_maintenance_costs(self, both_modes):
        """Join message costs of the two executions are the same order of
        magnitude (both are routing + O(1))."""
        oracle, _, protocol, _, _ = both_modes
        oracle_mean = oracle.stats.joins.mean_messages
        protocol_mean = protocol.metrics.histogram_summary("join_messages")["mean"]
        assert protocol_mean < 6 * max(oracle_mean, 1.0)
        assert oracle_mean < 6 * max(protocol_mean, 1.0)

    def test_leaves_keep_modes_consistent(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, positions = both_modes
        # Remove the same five objects (by insertion index) in both modes.
        for index in (3, 17, 44, 80, 101):
            oracle.remove(oracle_ids[index])
            protocol.leave(protocol_ids[index])
        assert oracle.check_consistency() == []
        assert protocol.verify_views() == []
        assert len(oracle) == len(protocol)


@pytest.fixture(scope="module")
def both_bulk_modes():
    """The same batch through ``VoroNet.bulk_load`` and the message-level
    ``ProtocolSimulator.bulk_join``, with identical seeds.

    Neither mode consumes its RNG before the vectorised Choose-LRT draw,
    so the two executions see byte-identical long-link targets — the
    parity checks below can pin long links exactly, not just their counts.
    """
    config = VoroNetConfig(n_max=1000, num_long_links=2, seed=424)
    positions = generate_objects(UniformDistribution(), 350, RandomSource(424))
    oracle = VoroNet(config)
    oracle_ids = oracle.bulk_load(positions)
    protocol = ProtocolSimulator(config, seed=424)
    report = protocol.bulk_join(positions)
    return oracle, oracle_ids, protocol, report, positions


class TestBulkJoinParity:
    def test_ids_assigned_in_input_order(self, both_bulk_modes):
        oracle, oracle_ids, protocol, report, positions = both_bulk_modes
        assert report.object_ids == oracle_ids
        assert len(protocol) == len(positions)

    def test_same_voronoi_views(self, both_bulk_modes):
        oracle, oracle_ids, protocol, report, _ = both_bulk_modes
        for oracle_id, protocol_id in zip(oracle_ids, report.object_ids):
            assert set(oracle.voronoi_neighbors(oracle_id)) == \
                set(protocol.node(protocol_id).voronoi)

    def test_same_close_neighbor_sets(self, both_bulk_modes):
        oracle, oracle_ids, protocol, report, _ = both_bulk_modes
        for oracle_id, protocol_id in zip(oracle_ids, report.object_ids):
            assert set(oracle.node(oracle_id).close_neighbors) == \
                set(protocol.node(protocol_id).close)

    def test_same_long_links(self, both_bulk_modes):
        """Out-degrees match the configuration and, with identical seeds,
        the targets and endpoints match the oracle draw exactly."""
        oracle, oracle_ids, protocol, report, _ = both_bulk_modes
        k = oracle.config.num_long_links
        for oracle_id, protocol_id in zip(oracle_ids, report.object_ids):
            oracle_links = oracle.node(oracle_id).long_links
            protocol_links = protocol.node(protocol_id).long_links
            assert len(protocol_links) == k
            assert [(link.target, link.neighbor) for link in oracle_links] == \
                [(link.target, link.neighbor) for link in protocol_links]

    def test_both_bulk_modes_internally_consistent(self, both_bulk_modes):
        oracle, _, protocol, _, _ = both_bulk_modes
        assert oracle.check_consistency() == []
        assert protocol.verify_views() == []

    def test_same_query_owner(self, both_bulk_modes):
        oracle, _, protocol, _, _ = both_bulk_modes
        rng = RandomSource(11)
        for _ in range(20):
            point = rng.random_point()
            assert oracle.owner_of(point) == protocol.query(point).owner

    def test_bulk_into_populated_overlay_stays_consistent(self):
        """bulk_join after sequential joins settles pre-existing back
        registrations (the hand-over phase) and keeps every view clean."""
        config = VoroNetConfig(n_max=1000, num_long_links=2, seed=99)
        positions = generate_objects(UniformDistribution(), 220, RandomSource(99))
        protocol = ProtocolSimulator(config, seed=99)
        for position in positions[:70]:
            protocol.join(position)
        report = protocol.bulk_join(positions[70:])
        assert len(protocol) == len(positions)
        assert "handover" in report.phase_messages
        assert protocol.verify_views() == []
        # The structure is position-determined: the kernel adjacency must
        # match an oracle fed the same positions (long links excepted —
        # the RNG consumption order differs across modes here).
        oracle = VoroNet(config)
        oracle_ids = [oracle.insert(p) for p in positions[:70]]
        oracle_ids += oracle.bulk_load(positions[70:])
        # Both modes number objects identically (sequential then batch).
        assert sorted(protocol.object_ids()) == oracle_ids
        for object_id in oracle_ids:
            assert set(oracle.voronoi_neighbors(object_id)) == \
                set(protocol.node(object_id).voronoi)
            assert set(oracle.node(object_id).close_neighbors) == \
                set(protocol.node(object_id).close)

    def test_handover_runs_even_without_back_link_maintenance(self):
        """The message-level handlers register back links regardless of the
        oracle-only ablation flag, so the hand-over phase must too —
        regression for stale long links after a bulk join with
        ``maintain_back_links=False``."""
        config = VoroNetConfig(n_max=1000, num_long_links=2, seed=17,
                               maintain_back_links=False)
        positions = generate_objects(UniformDistribution(), 150, RandomSource(17))
        protocol = ProtocolSimulator(config, seed=17)
        for position in positions[:60]:
            protocol.join(position)
        protocol.bulk_join(positions[60:])
        assert protocol.verify_views() == []

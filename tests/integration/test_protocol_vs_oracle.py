"""Cross-validation of the two execution modes.

The oracle-mode overlay (:class:`repro.core.overlay.VoroNet`) and the
message-level protocol simulator
(:class:`repro.simulation.protocol.ProtocolSimulator`) implement the same
protocol at two abstraction levels.  Feeding both the same object positions
must produce the same neighbour *structure* (the Voronoi adjacency and
close-neighbour sets are deterministic functions of the positions), and
both must route to the same owners.
"""

import numpy as np
import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.geometry.point import distance
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


@pytest.fixture(scope="module")
def both_modes():
    config = VoroNetConfig(n_max=300, seed=77)
    positions = generate_objects(UniformDistribution(), 120, RandomSource(77))
    oracle = VoroNet(config)
    oracle_ids = [oracle.insert(p) for p in positions]
    protocol = ProtocolSimulator(config, seed=77)
    protocol_ids = [protocol.join(p).object_id for p in positions]
    return oracle, oracle_ids, protocol, protocol_ids, positions


class TestStructuralEquivalence:
    def test_same_membership(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, _ = both_modes
        assert len(oracle) == len(protocol)

    def test_same_voronoi_adjacency(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, positions = both_modes
        # Both assign ids in insertion order, so index i maps to the same object.
        oracle_index = {oid: i for i, oid in enumerate(oracle_ids)}
        protocol_index = {oid: i for i, oid in enumerate(protocol_ids)}
        for i in range(len(positions)):
            oracle_nb = {oracle_index[n]
                         for n in oracle.voronoi_neighbors(oracle_ids[i])}
            protocol_nb = {protocol_index[n]
                           for n in protocol.kernel.neighbors(protocol_ids[i])}
            assert oracle_nb == protocol_nb

    def test_same_close_neighbor_sets(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, positions = both_modes
        oracle_index = {oid: i for i, oid in enumerate(oracle_ids)}
        protocol_index = {oid: i for i, oid in enumerate(protocol_ids)}
        for i in range(len(positions)):
            oracle_close = {oracle_index[n]
                            for n in oracle.node(oracle_ids[i]).close_neighbors}
            protocol_close = {protocol_index[n]
                              for n in protocol.node(protocol_ids[i]).close}
            assert oracle_close == protocol_close

    def test_both_modes_internally_consistent(self, both_modes):
        oracle, _, protocol, _, _ = both_modes
        assert oracle.check_consistency() == []
        assert protocol.verify_views() == []


class TestBehaviouralEquivalence:
    def test_same_lookup_owner(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, _ = both_modes
        oracle_index = {oid: i for i, oid in enumerate(oracle_ids)}
        protocol_index = {oid: i for i, oid in enumerate(protocol_ids)}
        rng = RandomSource(5)
        for _ in range(20):
            point = rng.random_point()
            oracle_owner = oracle_index[oracle.owner_of(point)]
            protocol_owner = protocol_index[protocol.query(point).owner]
            assert oracle_owner == protocol_owner

    def test_comparable_maintenance_costs(self, both_modes):
        """Join message costs of the two executions are the same order of
        magnitude (both are routing + O(1))."""
        oracle, _, protocol, _, _ = both_modes
        oracle_mean = oracle.stats.joins.mean_messages
        protocol_mean = protocol.metrics.histogram_summary("join_messages")["mean"]
        assert protocol_mean < 6 * max(oracle_mean, 1.0)
        assert oracle_mean < 6 * max(protocol_mean, 1.0)

    def test_leaves_keep_modes_consistent(self, both_modes):
        oracle, oracle_ids, protocol, protocol_ids, positions = both_modes
        # Remove the same five objects (by insertion index) in both modes.
        for index in (3, 17, 44, 80, 101):
            oracle.remove(oracle_ids[index])
            protocol.leave(protocol_ids[index])
        assert oracle.check_consistency() == []
        assert protocol.verify_views() == []
        assert len(oracle) == len(protocol)

"""Scaled-down checks of the paper's headline routing claims.

These are the evaluation's core qualitative results, verified at test-suite
scale (the benchmarks run the full-size versions):

* routes grow poly-logarithmically, not polynomially (Figure 6),
* the log(H) vs log(log N)) slope is near 2 (Figure 7),
* skewed distributions do not break routing (Figure 6),
* more long links shorten routes (Figure 8).
"""

import math

import pytest

from repro.analysis.hops import measure_routing, sweep_overlay_sizes
from repro.analysis.regression import fit_polylog_exponent
from repro.core import VoroNet, VoroNetConfig
from repro.utils.rng import RandomSource
from repro.workloads.distributions import PowerLawDistribution, UniformDistribution
from repro.workloads.generators import generate_objects


class TestPolyLogGrowth:
    def test_hops_grow_much_slower_than_sqrt_n(self):
        rng = RandomSource(31)
        positions = generate_objects(UniformDistribution(), 1200, rng)
        points = sweep_overlay_sizes(positions, [150, 600, 1200], rng, num_pairs=150)
        growth = points[-1].mean_hops / points[0].mean_hops
        sqrt_growth = math.sqrt(1200 / 150)
        assert growth < sqrt_growth

    def test_loglog_slope_is_roughly_two(self):
        rng = RandomSource(33)
        positions = generate_objects(UniformDistribution(), 2000, rng)
        checkpoints = [250, 500, 1000, 2000]
        points = sweep_overlay_sizes(positions, checkpoints, rng, num_pairs=200)
        fit = fit_polylog_exponent([p.size for p in points],
                                   [p.mean_hops for p in points])
        # At these small sizes the estimate is noisy; the paper reports ~2 at
        # 300k objects.  We accept a broad band that still excludes both
        # logarithmic (1) and polynomial (>3.5) growth.
        assert 0.8 <= fit.slope <= 3.5


class TestDistributionInsensitivity:
    def test_skew_does_not_hurt_routing(self):
        """Figure 6: skewed placements route no worse than uniform ones.

        At test scale the α=5 hot spot is much denser relative to ``d_min``
        than at paper scale, so its routes come out *shorter* than uniform
        (close neighbours form a dense mesh inside the hot spot); the claim
        under test is only that skew never degrades routing.
        """
        results = {}
        for distribution in (UniformDistribution(), PowerLawDistribution(alpha=5.0)):
            rng = RandomSource(35)
            positions = generate_objects(distribution, 700, rng)
            overlay = VoroNet(VoroNetConfig(n_max=1500, seed=35))
            overlay.insert_many(positions)
            results[distribution.name] = measure_routing(overlay, 150, rng).mean
        ratio = results["powerlaw-a5"] / results["uniform"]
        assert ratio < 1.5


class TestBulkLoadSweep:
    def test_bulk_load_sweep_reaches_paper_scale(self):
        """``use_bulk_load=True`` pushes the Figure 6 sweep to N = 10⁴ within
        the test-suite time budget, and routes still grow poly-log."""
        rng = RandomSource(41)
        positions = generate_objects(UniformDistribution(), 10_000, rng)
        points = sweep_overlay_sizes(positions, [2500, 5000, 10_000], rng,
                                     num_pairs=150, use_bulk_load=True)
        assert [p.size for p in points] == [2500, 5000, 10_000]
        assert all(p.stats.samples == 150 for p in points)
        assert all(p.stats.failures == 0 for p in points)
        growth = points[-1].mean_hops / points[0].mean_hops
        assert growth < math.sqrt(10_000 / 2500)

    def test_bulk_load_sweep_measures_same_structure(self):
        """At equal seeds, bulk-grown and join-grown sweeps route over the
        same Voronoi/close structure (long links differ only in draw order),
        so their mean hop counts agree closely."""
        positions = generate_objects(UniformDistribution(), 600,
                                     RandomSource(43))
        means = {}
        for use_bulk_load in (False, True):
            points = sweep_overlay_sizes(
                positions, [300, 600], RandomSource(44), num_pairs=200,
                use_bulk_load=use_bulk_load)
            means[use_bulk_load] = points[-1].mean_hops
        assert means[True] == pytest.approx(means[False], rel=0.25)


class TestLongLinkCount:
    def test_more_long_links_shorten_routes(self):
        """Figure 8: increasing k consistently improves routing."""
        rng = RandomSource(37)
        positions = generate_objects(UniformDistribution(), 700, rng)
        means = {}
        for k in (1, 6):
            overlay = VoroNet(VoroNetConfig(n_max=1500, num_long_links=k, seed=37))
            overlay.insert_many(positions)
            means[k] = measure_routing(overlay, 150, RandomSource(38)).mean
        assert means[6] < means[1]

"""Tests of the experiment drivers (small scales — the benches run them full size)."""

import pytest

from repro.experiments.ablation_churn_protocol import (
    format_churn_protocol,
    run_ablation_churn_protocol,
)
from repro.experiments.ablation_close_neighbors import format_ablation_close, run_ablation_close
from repro.experiments.ablation_maintenance import format_maintenance, run_maintenance_experiment
from repro.experiments.common import checkpoint_schedule, evaluation_distributions, scaled
from repro.experiments.fig5_degree import format_fig5, run_fig5
from repro.experiments.fig6_routes import format_fig6, run_fig6
from repro.experiments.fig7_slope import format_fig7, run_fig7
from repro.experiments.fig8_longlinks import format_fig8, run_fig8
from repro.experiments.runner import EXPERIMENTS, main


class TestCommonHelpers:
    def test_scaled_has_floor(self):
        assert scaled(1000, 0.001) == 8
        assert scaled(1000, 2.0) == 2000

    def test_checkpoint_schedule(self):
        schedule = checkpoint_schedule(600, 3)
        assert schedule == [200, 400, 600]
        with pytest.raises(ValueError):
            checkpoint_schedule(100, 0)

    def test_evaluation_distributions_names(self):
        names = [d.name for d in evaluation_distributions()]
        assert names == ["uniform", "powerlaw-a1", "powerlaw-a2", "powerlaw-a5"]


class TestFigureDrivers:
    def test_fig5_small_scale(self):
        result = run_fig5(scale=0.05)
        assert set(result.histograms) == {"uniform", "powerlaw-a1",
                                          "powerlaw-a2", "powerlaw-a5"}
        for summary in result.summaries.values():
            assert summary.count == result.overlay_size
        text = format_fig5(result)
        assert "Figure 5" in text and "uniform" in text

    def test_fig6_and_fig7_small_scale(self):
        sweep = run_fig6(scale=0.05)
        assert len(sweep.checkpoints) >= 3
        for series in sweep.series.values():
            assert len(series) == len(sweep.checkpoints)
        assert "Figure 6" in format_fig6(sweep)
        fit = run_fig7(sweep=sweep)
        assert set(fit.fits) == set(sweep.series)
        assert "slope" in format_fig7(fit)

    def test_fig6_bulk_load_matches_shape(self):
        """The bulk-load fast path feeds the same sweep machinery."""
        sweep = run_fig6(scale=0.05, use_bulk_load=True)
        assert len(sweep.checkpoints) >= 3
        for series in sweep.series.values():
            assert len(series) == len(sweep.checkpoints)
            assert all(point.stats.failures == 0 for point in series)

    def test_fig6_protocol_mode_ground_truth(self):
        """The message-level sweep: bulk-joined overlays, greedy QUERY
        walks over strictly local views, every route reaching its exact
        destination — and the fig7 fit consumes it unchanged."""
        sweep = run_fig6(scale=0.05, use_protocol=True)
        assert len(sweep.checkpoints) >= 3
        for series in sweep.series.values():
            assert len(series) == len(sweep.checkpoints)
            assert all(point.stats.failures == 0 for point in series)
            # Routes lengthen with overlay size (poly-log growth).
            assert series[-1].mean_hops > series[0].mean_hops * 0.9
        fit = run_fig7(sweep=sweep)
        assert set(fit.fits) == set(sweep.series)
        with pytest.raises(ValueError):
            run_fig6(scale=0.05, use_protocol=True, use_long_links=False)

    def test_fig8_small_scale(self):
        result = run_fig8(scale=0.05, link_counts=(1, 3, 6))
        assert result.link_counts == [1, 3, 6]
        for name in result.results:
            assert len(result.mean_hops(name)) == 3
        assert "Figure 8" in format_fig8(result)

    def test_ablation_close_small_scale(self):
        result = run_ablation_close(scale=0.05)
        assert set(result.routing) == {"clustered", "powerlaw-a5"}
        assert "ABL1" in format_ablation_close(result)

    def test_maintenance_small_scale(self):
        result = run_maintenance_experiment(scale=0.05)
        assert len(result.sizes) == 4
        assert all(result.join_messages[s] > 0 for s in result.sizes)
        assert result.protocol_join_messages > 0
        assert "ABL3" in format_maintenance(result)

    def test_churn_protocol_small_scale(self):
        result = run_ablation_churn_protocol(scale=0.15,
                                             crash_fractions=(0.05, 0.15))
        assert result.crash_fractions == [0.05, 0.15]
        assert result.all_converged
        for report in result.reports.values():
            assert report.verify_problems == 0
            assert report.damage.total_stale_entries > 0
            assert report.phase_messages["repair"] > 0
        text = format_churn_protocol(result)
        assert "ABL4" in text and "converged" in text


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig5", "fig6", "fig7", "fig8",
            "abl1-close", "abl2-baselines", "abl3-maintenance",
            "abl4-churn-protocol",
        }

    def test_cli_runs_one_experiment(self, capsys):
        exit_code = main(["fig5", "--scale", "0.05"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output
        assert "completed in" in output

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])

"""Tests of the per-node routing-candidate cache of the protocol simulator.

The protocol-level mirror of :mod:`tests.core.test_routing_cache`:

* a Hypothesis *stateful* machine interleaving joins, bulk joins, leaves
  and queries, asserting after every step that each node's cached flat
  block equals its freshly assembled candidate dict and that view epochs
  never move backwards;
* twin simulators (cache on vs. off) fed identical operation sequences,
  asserting byte-identical query owners and hop counts;
* direct checks of the epoch/invalidation contract (`touch_view` on every
  view-mutating handler, no block stored when the cache is disabled).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import VoroNetConfig
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


def assert_blocks_match_candidates(simulator):
    """Every cached block equals the fresh candidate dict of its node."""
    for object_id in simulator.object_ids():
        node = simulator.node(object_id)
        candidates = node.routing_candidates()
        block = node.routing_block()
        assert {neighbor for neighbor, _x, _y in block} == set(candidates)
        for neighbor, x, y in block:
            assert (x, y) == candidates[neighbor]


class NodeRoutingCacheMachine(RuleBasedStateMachine):
    """Arbitrary interleavings of protocol operations never leave a cached
    routing block out of sync with the node's fresh candidate view."""

    def __init__(self):
        super().__init__()
        self.simulator = ProtocolSimulator(
            VoroNetConfig(n_max=64, allow_overflow=True, num_long_links=2,
                          seed=1203), seed=1203)
        self.epochs = {}

    def _pick(self, token):
        ids = self.simulator.object_ids()
        return ids[token % len(ids)]

    @rule(x=st.floats(0.01, 0.99), y=st.floats(0.01, 0.99))
    def join_object(self, x, y):
        self.simulator.join((x, y))

    @rule(xs=st.lists(st.tuples(st.floats(0.01, 0.99), st.floats(0.01, 0.99)),
                      min_size=1, max_size=4))
    def bulk_join_batch(self, xs):
        try:
            self.simulator.bulk_join(xs)
        except ValueError:
            pass  # duplicate position in the batch

    @precondition(lambda self: len(self.simulator) > 1)
    @rule(token=st.integers(min_value=0))
    def leave_object(self, token):
        victim = self._pick(token)
        self.simulator.leave(victim)
        self.epochs.pop(victim, None)

    @precondition(lambda self: len(self.simulator) > 0)
    @rule(x=st.floats(0.0, 1.0), y=st.floats(0.0, 1.0))
    def query_point(self, x, y):
        report = self.simulator.query((x, y))
        assert report.owner in self.simulator.object_ids()

    @invariant()
    def view_epochs_are_monotone(self):
        for object_id in self.simulator.object_ids():
            epoch = self.simulator.node(object_id).view_epoch
            assert epoch >= self.epochs.get(object_id, 0)
            self.epochs[object_id] = epoch

    @invariant()
    def blocks_equal_fresh_candidates(self):
        assert_blocks_match_candidates(self.simulator)


TestNodeRoutingCacheStateful = NodeRoutingCacheMachine.TestCase
TestNodeRoutingCacheStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None)


def _twin_simulators(seed=88, n_max=2000, num_long_links=2):
    """Two structurally identical simulators, one cached, one not."""
    simulators = []
    for use_cache in (True, False):
        simulators.append(ProtocolSimulator(VoroNetConfig(
            n_max=n_max, num_long_links=num_long_links, seed=seed,
            use_node_routing_cache=use_cache), seed=seed))
    return simulators


class TestCacheParity:
    def test_identical_answers_through_churn(self):
        """Joins, bulk joins, leaves and queries answer identically with the
        node cache on vs. off."""
        cached, uncached = _twin_simulators(seed=505)
        positions = generate_objects(UniformDistribution(), 260, RandomSource(505))
        cached.bulk_join(positions[:200])
        uncached.bulk_join(positions[:200])
        for position in positions[200:]:
            report_c = cached.join(position)
            report_u = uncached.join(position)
            assert (report_c.object_id, report_c.routing_hops) == \
                (report_u.object_id, report_u.routing_hops)

        probe_rng = np.random.default_rng(606)
        ids = cached.object_ids()
        for victim in probe_rng.choice(ids, size=30, replace=False):
            report_c = cached.leave(int(victim))
            report_u = uncached.leave(int(victim))
            assert report_c.messages == report_u.messages

        for point in probe_rng.random((40, 2)):
            point = tuple(point)
            start = int(probe_rng.choice(cached.object_ids()))
            answer_c = cached.query(point, start=start)
            answer_u = uncached.query(point, start=start)
            assert answer_c.owner == answer_u.owner
            assert answer_c.routing_hops == answer_u.routing_hops
            assert answer_c.messages == answer_u.messages

        assert cached.verify_views() == []
        assert uncached.verify_views() == []
        assert_blocks_match_candidates(cached)

    def test_disabled_cache_builds_no_blocks(self):
        """With the switch off, greedy hops never materialise a block."""
        simulator = ProtocolSimulator(VoroNetConfig(
            n_max=128, seed=42, use_node_routing_cache=False), seed=42)
        simulator.bulk_join(generate_objects(
            UniformDistribution(), 40, RandomSource(42)))
        for _ in range(10):
            simulator.query(tuple(np.random.default_rng(1).random(2)))
        assert all(simulator.node(oid)._block is None
                   for oid in simulator.object_ids())


class TestEpochContract:
    def test_handlers_bump_the_epoch(self):
        simulator = ProtocolSimulator(
            VoroNetConfig(n_max=64, seed=9), seed=9)
        simulator.bulk_join([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9), (0.5, 0.4)])
        epochs = {oid: simulator.node(oid).view_epoch
                  for oid in simulator.object_ids()}
        report = simulator.join((0.52, 0.42))
        # The join touched its region owner's neighbourhood: at least one
        # pre-existing node must have seen its view (and epoch) move.
        assert any(simulator.node(oid).view_epoch > epochs[oid]
                   for oid in epochs if oid in simulator.nodes)
        # ... and the joining node built its view from scratch.
        assert simulator.node(report.object_id).view_epoch > 0

    def test_stale_block_is_rebuilt_after_leave(self):
        simulator = ProtocolSimulator(
            VoroNetConfig(n_max=64, seed=10), seed=10)
        ids = simulator.bulk_join(
            [(0.1, 0.1), (0.9, 0.1), (0.5, 0.9), (0.5, 0.4)]).object_ids
        survivor = ids[0]
        simulator.node(survivor).routing_block()  # warm the cache
        simulator.leave(ids[3])
        block_ids = {neighbor for neighbor, _x, _y
                     in simulator.node(survivor).routing_block()}
        assert ids[3] not in block_ids
        assert_blocks_match_candidates(simulator)

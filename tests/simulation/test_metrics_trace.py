"""Unit tests for the metrics registry and trace recorder."""

import pytest

from repro.simulation.metrics import MetricsRegistry
from repro.simulation.trace import TraceRecorder


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("joins")
        metrics.increment("joins", 2)
        assert metrics.counter("joins") == 3
        assert metrics.counter("unknown") == 0

    def test_histograms(self):
        metrics = MetricsRegistry()
        for value in (1, 2, 3, 4, 100):
            metrics.observe("messages", value)
        summary = metrics.histogram_summary("messages")
        assert summary["count"] == 5
        assert summary["max"] == 100
        assert summary["p50"] == 3

    def test_unknown_histogram_summary(self):
        summary = MetricsRegistry().histogram_summary("nope")
        assert summary["count"] == 0

    def test_histogram_values(self):
        metrics = MetricsRegistry()
        metrics.observe("x", 1.5)
        assert metrics.histogram_values("x") == [1.5]
        assert metrics.histogram_values("missing") == []

    def test_as_dict_and_reset(self):
        metrics = MetricsRegistry()
        metrics.increment("a")
        metrics.observe("b", 2)
        data = metrics.as_dict()
        assert data["counters"] == {"a": 1}
        assert "b" in data["histograms"]
        metrics.reset()
        assert metrics.as_dict() == {"counters": {}, "histograms": {}}


class TestTraceRecorder:
    def test_records_and_filters(self):
        trace = TraceRecorder()
        trace.record(0.0, "send", sender=1)
        trace.record(1.0, "send", sender=2)
        trace.record(2.0, "recv", sender=2)
        assert len(trace) == 3
        assert trace.count("send") == 2
        assert len(trace.records("send", predicate=lambda r: r.details["sender"] == 2)) == 1

    def test_counts_by_kind(self):
        trace = TraceRecorder()
        trace.record(0.0, "send")
        trace.record(1.0, "send")
        trace.record(2.0, "crash")
        assert trace.counts_by_kind() == {"send": 2, "crash": 1}
        assert TraceRecorder().counts_by_kind() == {}

    def test_capacity_eviction(self):
        trace = TraceRecorder(capacity=3)
        for i in range(5):
            trace.record(float(i), "tick")
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [r.time for r in trace] == [2.0, 3.0, 4.0]

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0.0, "tick")
        assert len(trace) == 0
        assert trace.dropped == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(0.0, "tick")
        trace.clear()
        assert len(trace) == 0

"""Tests of the message-level fault subsystem.

Covers the fault plane (crash/loss/partition decisions, including a
Hypothesis pin of seed-determinism), heartbeat detection, the phased
repair protocol, protocol-vs-oracle crash parity, and the churn harness.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VoroNet, VoroNetConfig
from repro.simulation.failures import CrashInjector
from repro.simulation.faults import (
    FaultPlane,
    HeartbeatConfig,
    HeartbeatDetector,
    ProtocolChurnHarness,
    ProtocolCrashInjector,
    RepairProtocol,
)
from repro.simulation.network import Message
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


def build_simulator(count=150, seed=77, num_long_links=2, loss=0.0):
    config = VoroNetConfig(n_max=4 * count, num_long_links=num_long_links,
                           seed=seed)
    simulator = ProtocolSimulator(config, seed=seed,
                                  faults=FaultPlane(seed=seed + 1,
                                                    loss_probability=loss))
    positions = generate_objects(UniformDistribution(), count,
                                 RandomSource(seed))
    simulator.bulk_join(positions)
    return simulator


# ----------------------------------------------------------------------
# FaultPlane
# ----------------------------------------------------------------------
class TestFaultPlane:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlane(loss_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlane(delay_probability=-0.1)
        with pytest.raises(ValueError):
            FaultPlane(delay_probability=0.5, delay_range=(3.0, 1.0))
        with pytest.raises(ValueError):
            FaultPlane().partition([1, 2], start=5.0, end=1.0)

    def test_crashed_endpoints_drop(self):
        plane = FaultPlane(seed=1)
        plane.crash(7)
        to_dead = plane.decide(Message(sender=1, recipient=7, kind="X"), 0.0)
        from_dead = plane.decide(Message(sender=7, recipient=1, kind="X"), 0.0)
        alive = plane.decide(Message(sender=1, recipient=2, kind="X"), 0.0)
        assert not to_dead.deliver and to_dead.reason == "crashed_recipient"
        assert not from_dead.deliver and from_dead.reason == "crashed_sender"
        assert alive.deliver
        assert plane.drops_by_reason == {"crashed_recipient": 1,
                                         "crashed_sender": 1}

    def test_partition_cuts_only_inside_window(self):
        plane = FaultPlane(seed=2)
        plane.partition([1, 2], start=10.0, end=20.0)
        crossing = Message(sender=1, recipient=5, kind="X")
        internal = Message(sender=1, recipient=2, kind="X")
        assert plane.decide(crossing, 5.0).deliver          # before the window
        assert not plane.decide(crossing, 10.0).deliver     # inside
        assert plane.decide(internal, 15.0).deliver         # same side
        assert plane.decide(crossing, 20.0).deliver         # half-open end
        # The expired window was pruned by the decide() above; only the
        # newly added spec is left for heal to drop.
        plane.partition([5], start=30.0, end=40.0)
        assert plane.heal_partitions() == 1
        assert plane.decide(crossing, 15.0).deliver

    def test_loss_and_delay_draws(self):
        plane = FaultPlane(seed=3, loss_probability=0.5,
                           delay_probability=1.0, delay_range=(2.0, 4.0))
        delivered = dropped = 0
        for index in range(200):
            decision = plane.decide(
                Message(sender=0, recipient=index + 1, kind="X"), 0.0)
            if decision.deliver:
                delivered += 1
                assert 2.0 <= decision.extra_delay <= 4.0
            else:
                dropped += 1
        assert delivered > 0 and dropped > 0
        assert plane.drops_by_reason["loss"] == dropped

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        loss=st.floats(0.0, 1.0),
        delay_probability=st.floats(0.0, 1.0),
        endpoints=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            min_size=1, max_size=60),
        crashed=st.sets(st.integers(0, 30), max_size=5),
    )
    def test_decisions_deterministic_under_fixed_seed(self, seed, loss,
                                                      delay_probability,
                                                      endpoints, crashed):
        """Two planes with the same seed and message sequence agree exactly."""
        planes = []
        for _ in range(2):
            plane = FaultPlane(seed=seed, loss_probability=loss,
                               delay_probability=delay_probability,
                               delay_range=(1.0, 2.0))
            for object_id in crashed:
                plane.crash(object_id)
            plane.partition([0, 1, 2], start=5.0, end=9.0)
            planes.append(plane)
        messages = [Message(sender=a, recipient=b, kind="X")
                    for a, b in endpoints]
        decisions = [
            [plane.decide(message, float(index % 12))
             for index, message in enumerate(messages)]
            for plane in planes
        ]
        assert decisions[0] == decisions[1]
        assert planes[0].drops_by_reason == planes[1].drops_by_reason


# ----------------------------------------------------------------------
# network integration
# ----------------------------------------------------------------------
class TestNetworkIntegration:
    def test_lost_messages_counted_sent_but_not_delivered(self):
        simulator = build_simulator(count=60, seed=5)
        simulator.faults.set_loss(1.0)
        before = simulator.network.snapshot_counters()
        start = simulator.object_ids()[0]
        simulator.query((0.5, 0.5), start=start)
        deltas = simulator.network.counters_since(before)
        assert deltas.get("sent", 0) >= 1
        assert deltas.get("lost", 0) == deltas.get("sent", 0)
        assert "delivered" not in deltas
        simulator.faults.set_loss(0.0)

    def test_extra_delay_stretches_delivery(self):
        simulator = ProtocolSimulator(
            VoroNetConfig(n_max=64, seed=9), seed=9,
            faults=FaultPlane(seed=9, delay_probability=1.0,
                              delay_range=(5.0, 5.0)))
        simulator.join((0.3, 0.3))
        simulator.join((0.7, 0.7))
        # Every counted message took latency 1 + exactly 5 extra.
        assert simulator.engine.now >= 6.0


# ----------------------------------------------------------------------
# heartbeat detection
# ----------------------------------------------------------------------
class TestHeartbeatDetector:
    def test_validation(self):
        simulator = build_simulator(count=20, seed=6)
        with pytest.raises(ValueError):
            HeartbeatDetector(simulator, interval=0.0)
        with pytest.raises(ValueError):
            HeartbeatDetector(simulator, miss_threshold=0)

    def test_healthy_overlay_produces_no_suspects(self):
        simulator = build_simulator(count=60, seed=6)
        detector = HeartbeatDetector(simulator, miss_threshold=2)
        assert detector.run_rounds(3) == []
        assert detector.suspected() == {}

    def test_crashed_peer_suspected_after_threshold(self):
        simulator = build_simulator(count=80, seed=7)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(1))
        victims = set(injector.crash_random(8))
        detector = HeartbeatDetector(simulator, miss_threshold=3)
        assert detector.run_rounds(2) == []          # below the threshold
        created = detector.run_round()               # third miss trips it
        assert created
        assert {suspect for _prober, suspect in created} <= victims
        # Every surviving holder of a reference to a victim now suspects it.
        for node in simulator.nodes.values():
            for peer in node.monitored_peers():
                if peer in victims:
                    assert peer in node.suspects

    def test_suspicion_scrubs_back_links_and_close_locally(self):
        simulator = build_simulator(count=80, seed=8)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(2))
        victims = set(injector.crash_random(10))
        HeartbeatDetector(simulator, miss_threshold=2).run_rounds(2)
        for node in simulator.nodes.values():
            assert not victims & set(node.close)
            assert not {source for source, _ in node.back_links} & victims

    def test_clock_driven_partition_window(self):
        """A partition long enough to cross the miss threshold creates
        suspicion; once healed, probes exonerate the live suspects."""
        simulator = build_simulator(count=60, seed=10)
        plane = simulator.faults
        isolated = simulator.object_ids()[:6]
        detector = HeartbeatDetector(simulator, interval=5.0,
                                     miss_threshold=2)
        start = simulator.engine.now
        plane.partition(isolated, start=start, end=start + 18.0)
        detector.start(duration=20.0)
        simulator.engine.run()
        detector.stop()
        suspected = {suspect for suspects in detector.suspected().values()
                     for suspect in suspects}
        assert suspected
        # Heal and repair: live "victims" answer the probes, nothing is
        # amputated, and the overlay stays structurally intact.
        plane.heal_partitions()
        report = RepairProtocol(simulator, detector=detector).repair()
        assert report.converged
        assert detector.suspected() == {}
        assert simulator.verify_views() == []


# ----------------------------------------------------------------------
# piggy-backed / sampled liveness
# ----------------------------------------------------------------------
class TestHeartbeatConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(interval=0.0)
        with pytest.raises(ValueError):
            HeartbeatConfig(miss_threshold=0)
        with pytest.raises(ValueError):
            HeartbeatConfig(sample_fraction=0.0)
        with pytest.raises(ValueError):
            HeartbeatConfig(sample_fraction=1.5)

    def test_sample_period(self):
        assert HeartbeatConfig().sample_period == 1
        assert HeartbeatConfig(sample_fraction=0.25).sample_period == 4
        assert HeartbeatConfig(sample_fraction=0.1).sample_period == 10

    def test_detector_rejects_config_plus_kwargs(self):
        simulator = build_simulator(count=20, seed=6)
        with pytest.raises(ValueError):
            HeartbeatDetector(simulator, interval=4.0,
                              config=HeartbeatConfig())

    def test_full_probe_config_is_byte_identical_to_kwargs(self):
        """Parity pin: with piggyback/sampling off, the optimized detector
        takes the legacy code path — identical counters on twin overlays."""
        counters = []
        for construct in ("kwargs", "config"):
            simulator = build_simulator(count=80, seed=21)
            if construct == "kwargs":
                detector = HeartbeatDetector(simulator, interval=8.0,
                                             miss_threshold=2)
            else:
                detector = HeartbeatDetector(
                    simulator, config=HeartbeatConfig(interval=8.0,
                                                      miss_threshold=2))
            detector.run_rounds(3)
            assert not simulator.piggyback_liveness
            counters.append(simulator.network.snapshot_counters())
        assert counters[0] == counters[1]


class TestPiggybackLiveness:
    def test_healthy_overlay_stays_suspectless_and_cheaper(self):
        """Piggy-backed rounds on a healthy overlay create no suspicion and
        probe strictly less than full-probe rounds (alternation + PONG
        suppression + long-link sampling)."""
        simulator = build_simulator(count=80, seed=31)
        full = HeartbeatDetector(simulator, config=HeartbeatConfig())
        before = simulator.network.messages_sent
        assert full.run_rounds(4) == []
        full_cost = simulator.network.messages_sent - before

        simulator = build_simulator(count=80, seed=31)
        piggy = HeartbeatDetector(simulator, config=HeartbeatConfig(
            piggyback=True, sample_fraction=0.25))
        assert simulator.piggyback_liveness
        before = simulator.network.messages_sent
        assert piggy.run_rounds(4) == []
        piggy_cost = simulator.network.messages_sent - before
        assert piggy_cost < full_cost / 2
        assert piggy.suspected() == {}

    def test_ordinary_traffic_substitutes_for_probes(self):
        """A peer heard from through protocol traffic is not probed."""
        simulator = build_simulator(count=60, seed=32)
        detector = HeartbeatDetector(simulator, config=HeartbeatConfig(
            piggyback=True))
        detector.run_round()  # seeds freshness via crossing probes
        cost_idle = simulator.network.sent_by_kind.get("PING", 0)
        rng = RandomSource(5)
        for _ in range(30):
            simulator.query(rng.random_point())
        detector.run_round()
        detector.run_round()
        assert detector.suspected() == {}
        # With traffic continuously refreshing edges, total pings stay far
        # below two additional full-probe rounds.
        assert simulator.network.sent_by_kind.get("PING", 0) < 3 * cost_idle

    def test_retired_piggyback_detector_cannot_poison_full_probe(self):
        """Regression: a piggyback detector's leftover probe bookkeeping
        (round numbers in ``last_ping_round``) must never suppress PONGs
        answered to a *later* full-probe detector — the eras stamped into
        piggyback probes keep the entries from matching."""
        simulator = build_simulator(count=40, seed=36)
        HeartbeatDetector(simulator, config=HeartbeatConfig(
            piggyback=True)).run_rounds(2)
        follow_up = HeartbeatDetector(
            simulator, config=HeartbeatConfig(miss_threshold=1))
        assert follow_up.run_round() == []
        assert follow_up.suspected() == {}

    def test_idle_overlay_crash_detected_without_traffic(self):
        """Regression: freshness must age in *rounds*, not virtual time.

        Synchronous rounds on an idle overlay barely advance the clock, so
        a time-based freshness window freezes after the first probing
        round and a later crash would never be probed again.  Idle rounds
        first, then a crash, then detection within the documented
        2·miss_threshold + sample_period budget."""
        config = HeartbeatConfig(piggyback=True, sample_fraction=0.25)
        simulator = build_simulator(count=60, seed=34)
        detector = HeartbeatDetector(simulator, config=config)
        detector.run_rounds(5)  # idle: no traffic besides the probes
        assert detector.suspected() == {}
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(8))
        victims = set(injector.crash_random(5))
        budget = 2 * config.miss_threshold + config.sample_period + 2
        detector.run_rounds(budget)
        for node in simulator.nodes.values():
            for peer in node.monitored_peers():
                if peer in victims:
                    assert peer in node.suspects

    def test_sampled_detection_still_finds_all_damage(self):
        """Long-link/back-link edges are probed on a stride; every stale
        reference to a crashed peer must still be suspected within the
        threshold + freshness window + sampling period budget."""
        config = HeartbeatConfig(piggyback=True, sample_fraction=0.25)
        simulator = build_simulator(count=100, seed=33, num_long_links=2)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(3))
        victims = set(injector.crash_random(10))
        detector = HeartbeatDetector(simulator, config=config)
        budget = (2 * config.miss_threshold + config.sample_period + 2)
        for _ in range(budget):
            detector.run_round()
        for node in simulator.nodes.values():
            for peer in node.monitored_peers():
                if peer in victims:
                    assert peer in node.suspects
        report = RepairProtocol(simulator, detector=detector).repair()
        assert report.converged
        assert injector.assess_damage().total_stale_entries == 0
        assert simulator.verify_views() == []

    def test_piggyback_repair_converges_under_heavy_loss(self):
        """The acceptance scenario: 10% crash, 30% loss, piggyback and
        sampling on — detection and repair still converge in budget."""
        harness = ProtocolChurnHarness(
            num_objects=200, seed=33, churn_events=16, crash_fraction=0.1,
            loss_probability=0.3,
            heartbeat=HeartbeatConfig(piggyback=True, sample_fraction=0.25),
            max_detection_rounds=16, max_repair_rounds=32)
        report = harness.run()
        assert report.converged
        assert report.verify_problems == 0
        assert report.residual_damage.total_stale_entries == 0

    def test_steady_state_measurement_reports_reduction(self):
        harness = ProtocolChurnHarness(num_objects=150, seed=41,
                                       churn_events=0, crash_fraction=0.1,
                                       measure_liveness=True,
                                       liveness_rounds=3, liveness_queries=15)
        report = harness.run()
        steady = report.steady_state_liveness
        assert steady is not None
        assert steady["full_probe_messages"] > 0
        assert steady["piggyback_messages"] > 0
        assert steady["reduction"] >= 3.0
        # The measurement must not break the experiment itself.
        assert report.converged
        assert report.verify_problems == 0

    def test_measurement_is_reproducible(self):
        reports = [
            ProtocolChurnHarness(num_objects=120, seed=43, churn_events=8,
                                 crash_fraction=0.1, measure_liveness=True,
                                 liveness_rounds=2, liveness_queries=10).run()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]


# ----------------------------------------------------------------------
# protocol-vs-oracle crash parity, and repair
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def crashed_twins():
    """The same bulk batch through the oracle and the protocol simulator,
    with the same crash victims injected into both.

    Identical seeds keep the vectorised Choose-LRT draws byte-identical,
    so long links (targets *and* endpoints) match exactly — the
    precondition for damage parity under identical crash victims.
    """
    config = VoroNetConfig(n_max=1200, num_long_links=2, seed=515)
    positions = generate_objects(UniformDistribution(), 300,
                                 RandomSource(515))
    oracle = VoroNet(config)
    oracle_ids = oracle.bulk_load(positions)
    protocol = ProtocolSimulator(config, seed=515, faults=FaultPlane(seed=516))
    report = protocol.bulk_join(positions)
    assert report.object_ids == oracle_ids
    oracle_injector = CrashInjector(oracle)
    protocol_injector = ProtocolCrashInjector(protocol)
    # Same explicit victims in both modes (the two object_ids() orderings
    # differ, so crash_random with a shared seed would diverge).
    victims = RandomSource(99).choice(sorted(oracle_ids), size=30,
                                      replace=False)
    for victim in victims:
        oracle_injector.crash(victim)
        protocol_injector.crash(victim)
    return oracle_injector, protocol_injector, protocol


class TestProtocolOracleCrashParity:
    def test_same_victims_equivalent_damage(self, crashed_twins):
        oracle_injector, protocol_injector, _protocol = crashed_twins
        oracle_damage = oracle_injector.assess_damage()
        protocol_damage = protocol_injector.assess_damage()
        assert protocol_damage.crashed == oracle_damage.crashed
        assert protocol_damage.dangling_long_links == \
            oracle_damage.dangling_long_links
        assert protocol_damage.stale_close_neighbors == \
            oracle_damage.stale_close_neighbors
        assert protocol_damage.dangling_back_links == \
            oracle_damage.dangling_back_links
        assert protocol_damage.total_stale_entries > 0
        # Only the protocol mode can have stale Voronoi views (the oracle
        # derives them from the kernel).
        assert oracle_damage.stale_voronoi_entries == 0
        assert protocol_damage.stale_voronoi_entries > 0

    def test_both_modes_repair_clean(self, crashed_twins):
        oracle_injector, protocol_injector, protocol = crashed_twins
        fixed = oracle_injector.repair()
        assert fixed > 0
        assert oracle_injector.assess_damage().total_stale_entries == 0

        detector = HeartbeatDetector(protocol, miss_threshold=2)
        detector.run_rounds(2)
        report = RepairProtocol(protocol, detector=detector).repair()
        assert report.converged
        residual = protocol_injector.assess_damage()
        assert residual.total_stale_entries == 0
        assert protocol.verify_views() == []


class TestRepairProtocol:
    def test_repair_without_suspects_is_a_noop(self):
        simulator = build_simulator(count=40, seed=11)
        report = RepairProtocol(simulator).repair()
        assert report.converged
        assert report.rounds <= 1
        assert report.suspects_processed == 0

    def test_repair_converges_under_message_loss(self):
        simulator = build_simulator(count=150, seed=13)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(4))
        injector.crash_random(15)
        simulator.faults.set_loss(0.15)
        detector = HeartbeatDetector(simulator, miss_threshold=2)
        detector.run_rounds(3)
        report = RepairProtocol(simulator, detector=detector,
                                max_rounds=16).repair()
        simulator.faults.set_loss(0.0)
        assert report.converged
        assert injector.assess_damage().total_stale_entries == 0
        assert simulator.verify_views() == []

    def test_false_suspicion_restores_close_entries(self):
        """Suspicion scrubs close entries destructively; once a live
        suspect is exonerated, close re-discovery must restore the entry
        even though the suspect list is empty by the close phase —
        symmetry and totals end up exactly as before the faults."""
        def close_state(sim):
            holes = sum(1 for oid, node in sim.nodes.items()
                        for cid in node.close
                        if oid not in sim.nodes[cid].close)
            return holes, sum(len(n.close) for n in sim.nodes.values())

        simulator = build_simulator(count=150, seed=13, loss=0.0)
        _, total_before = close_state(simulator)
        assert total_before > 0
        simulator.faults.set_loss(0.35)
        detector = HeartbeatDetector(simulator, miss_threshold=2)
        detector.run_rounds(4)          # heavy loss: false suspicion forms
        report = RepairProtocol(simulator, detector=detector,
                                max_rounds=32).repair()
        simulator.faults.set_loss(0.0)
        assert report.converged
        holes, total_after = close_state(simulator)
        assert holes == 0
        assert total_after == total_before
        assert simulator.verify_views() == []

    def test_repaired_overlay_serves_queries(self):
        simulator = build_simulator(count=120, seed=14)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(5))
        injector.crash_random(12)
        detector = HeartbeatDetector(simulator, miss_threshold=2)
        detector.run_rounds(2)
        assert RepairProtocol(simulator, detector=detector).repair().converged
        rng = RandomSource(6)
        ids = simulator.object_ids()
        for _ in range(15):
            destination = ids[rng.integer(0, len(ids))]
            answer = simulator.query(simulator.node(destination).position)
            assert answer.owner == destination


# ----------------------------------------------------------------------
# the churn harness
# ----------------------------------------------------------------------
class TestProtocolChurnHarness:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProtocolChurnHarness(crash_fraction=1.0)

    def test_full_cycle_converges_with_accounting(self):
        harness = ProtocolChurnHarness(num_objects=250, seed=17,
                                       churn_events=24, crash_fraction=0.1)
        report = harness.run()
        assert report.converged
        assert report.verify_problems == 0
        assert report.residual_damage.total_stale_entries == 0
        assert report.damage.total_stale_entries > 0
        assert report.churn_joins > 0 and report.churn_leaves > 0
        for phase in ("build", "churn", "detect", "repair"):
            assert report.phase_messages[phase] > 0
        repair_total = sum(count for key, count in report.phase_messages.items()
                           if key.startswith("repair:"))
        assert repair_total == report.phase_messages["repair"]

    def test_full_cycle_converges_under_heavy_loss(self):
        """30% loss needs a proportionately larger round budget (rounds
        are retry-safe; each one lands a geometric share of the work)."""
        harness = ProtocolChurnHarness(num_objects=200, seed=33,
                                       churn_events=16, crash_fraction=0.1,
                                       loss_probability=0.3,
                                       max_repair_rounds=32)
        report = harness.run()
        assert report.converged
        assert report.verify_problems == 0
        assert report.residual_damage.total_stale_entries == 0
        assert report.repair.rounds > 1  # loss really made rounds retry

    def test_churn_event_count_is_exact(self):
        harness = ProtocolChurnHarness(num_objects=150, seed=37,
                                       churn_events=20, crash_fraction=0.05)
        report = harness.run()
        assert report.churn_joins + report.churn_leaves == 20

    def test_reproducible_from_seed(self):
        reports = [
            ProtocolChurnHarness(num_objects=150, seed=23, churn_events=16,
                                 crash_fraction=0.1).run()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_trace_records_the_fault_timeline(self):
        from repro.simulation.trace import TraceRecorder

        trace = TraceRecorder()
        harness = ProtocolChurnHarness(num_objects=150, seed=31,
                                       churn_events=0, crash_fraction=0.1,
                                       trace=trace)
        report = harness.run()
        counts = trace.counts_by_kind()
        assert counts["crash"] == report.crashed
        assert counts["repair_round"] == report.repair.rounds
        assert counts["suspect"] >= report.damage.affected_objects

    def test_churn_scheduler_teardown_leaves_engine_quiescent(self):
        harness = ProtocolChurnHarness(num_objects=120, seed=29,
                                       churn_events=16, crash_fraction=0.05)
        harness.run()
        assert harness.scheduler is not None
        assert harness.simulator.engine.quiescent
        # A batched operation is immediately usable after teardown.
        harness.simulator.bulk_join([(0.123456, 0.654321)])


# ----------------------------------------------------------------------
# partition edge cases (crash-at-any-message hardening)
# ----------------------------------------------------------------------
class TestPartitionEdgeCases:
    """Boundary semantics of partition windows on the virtual clock.

    The fault plane decides a message's fate at *send* time, and the
    window is half-open (``start <= now < end``).  These tests pin both
    facts: a message sent before the window opens sails through even
    though its delivery lands inside the window, and the exact boundary
    instants behave deterministically (window start cuts, window end
    does not, a crash landing on the boundary takes precedence).
    """

    def test_message_sent_before_window_delivers_inside_it(self):
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.network import ConstantLatency, Network

        engine = SimulationEngine()
        network = Network(engine, ConstantLatency(10.0))
        plane = FaultPlane(seed=5)
        network.faults = plane
        received = []
        network.register(1, lambda message: None)
        network.register(2, lambda message: received.append(
            (engine.now, message.kind)))
        plane.partition([2], start=5.0, end=20.0)
        # Sent at t=0 (window closed), delivered at t=10 (window open):
        # the decision was taken at send time, so it goes through.
        network.send(Message(sender=1, recipient=2, kind="EARLY"))
        # Sent at t=6 (window open): cut, even though its delivery at
        # t=16 would also land inside the window.
        engine.schedule(6.0, lambda: network.send(
            Message(sender=1, recipient=2, kind="INSIDE")))
        engine.run()
        assert received == [(10.0, "EARLY")]
        assert plane.drops_by_reason == {"partition": 1}

    def test_crash_landing_exactly_on_window_boundary(self):
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.network import ConstantLatency, Network

        engine = SimulationEngine()
        network = Network(engine, ConstantLatency(1.0))
        plane = FaultPlane(seed=6)
        network.faults = plane
        received = []
        network.register(1, lambda message: None)
        network.register(2, lambda message: received.append(message.kind))
        plane.partition([2], start=5.0, end=10.0)
        # t=5 exactly: the half-open window includes its start — cut.
        engine.schedule(5.0, lambda: network.send(
            Message(sender=1, recipient=2, kind="AT_START")))
        # t=10 exactly: the window excludes its end, but a crash lands on
        # the same boundary instant first — the fixed decision order
        # (crash before partition) must classify the drop as a crash.
        engine.schedule(10.0, lambda: plane.crash(2))
        engine.schedule(10.0, lambda: network.send(
            Message(sender=1, recipient=2, kind="AT_END")))
        engine.run()
        assert received == []
        assert plane.drops_by_reason == {"partition": 1,
                                         "crashed_recipient": 1}

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16),
           start=st.floats(0.0, 50.0, allow_nan=False),
           duration=st.floats(0.001, 50.0, allow_nan=False),
           crash_on_boundary=st.booleans(),
           at_end=st.booleans())
    def test_boundary_decisions_pinned(self, seed, start, duration,
                                       crash_on_boundary, at_end):
        """Seeded planes agree exactly at both window boundary instants."""
        from hypothesis import assume

        end = start + duration
        assume(end > start)
        decisions = []
        for _ in range(2):
            plane = FaultPlane(seed=seed)
            plane.partition([2], start=start, end=end)
            if crash_on_boundary:
                plane.crash(1)
            now = end if at_end else start
            decisions.append(plane.decide(
                Message(sender=1, recipient=2, kind="X"), now))
        assert decisions[0] == decisions[1]
        decision = decisions[0]
        if crash_on_boundary:
            assert not decision.deliver
            assert decision.reason == "crashed_sender"
        elif at_end:
            assert decision.deliver
        else:
            assert not decision.deliver
            assert decision.reason == "partition"

"""Seeded components expose their effective seed, and same seed ⇒ same run.

Satellite of the SIM002 determinism rule: a finding is only auditable if
every stochastic component can say which stream it draws from.
"""

from repro.simulation.engine import SimulationEngine
from repro.simulation.faults import FaultPlane
from repro.simulation.network import (ConstantLatency, Message, Network,
                                      UniformLatency)
from repro.utils.rng import RandomSource


# ----------------------------------------------------------------------
# provenance strings
# ----------------------------------------------------------------------
def test_random_source_provenance_direct_seed():
    rng = RandomSource(42)
    assert rng.seed == 42
    assert rng.provenance == "42"
    assert repr(rng) == "RandomSource(provenance='42')"


def test_random_source_provenance_unseeded():
    assert RandomSource().provenance == "unseeded"


def test_random_source_provenance_spawn_chain():
    root = RandomSource(7)
    first = root.fork()
    second = root.fork()
    assert first.provenance == "7.spawn[0]"
    assert second.provenance == "7.spawn[1]"  # forks stay distinguishable
    grandchild = first.fork()
    assert grandchild.provenance == "7.spawn[0].spawn[0]"
    # Derived streams have no single integer seed, by construction.
    assert first.seed is None


def test_random_source_shared_stream_keeps_provenance():
    root = RandomSource(5)
    shared = RandomSource(root)
    assert shared.provenance == "5"
    assert shared.seed == 5


# ----------------------------------------------------------------------
# component reprs
# ----------------------------------------------------------------------
def test_fault_plane_exposes_seed():
    plane = FaultPlane(seed=123, loss_probability=0.25)
    assert plane.seed == 123
    assert "seed=123" in repr(plane)
    assert "loss_probability=0.25" in repr(plane)


def test_uniform_latency_repr_pending_until_bound():
    model = UniformLatency(0.5, 1.5)
    assert model.effective_seed is None
    assert "rng_pending" in repr(model)
    model.bind_rng(RandomSource(99))
    assert model.effective_seed == 99
    assert "effective_seed='99'" in repr(model)


def test_uniform_latency_repr_with_explicit_rng():
    model = UniformLatency(0.5, 1.5, rng=RandomSource(11))
    assert model.effective_seed == 11
    assert "effective_seed='11'" in repr(model)
    # An explicit stream is not displaced by a later bind.
    model.bind_rng(RandomSource(12))
    assert model.effective_seed == 11


def test_uniform_latency_repr_with_spawned_stream_is_auditable():
    model = UniformLatency(0.5, 1.5)
    model.bind_rng(RandomSource(3).fork())
    assert model.effective_seed is None  # derived, not a direct seed...
    assert "effective_seed='3.spawn[0]'" in repr(model)  # ...but auditable


def test_constant_latency_repr():
    assert repr(ConstantLatency(2.0)) == "ConstantLatency(latency=2.0)"


# ----------------------------------------------------------------------
# same seed ⇒ same behaviour
# ----------------------------------------------------------------------
def _delivery_times(seed: int, n: int = 50):
    engine = SimulationEngine()
    model = UniformLatency(0.5, 1.5)
    model.bind_rng(RandomSource(seed))
    network = Network(engine, latency=model)
    times = []
    network.register(1, lambda message: times.append(engine.now))
    for index in range(n):
        network.send(Message(sender=0, recipient=1, kind="PING",
                             payload={"index": index}))
    engine.run()
    return times


def test_same_seed_same_latency_schedule():
    assert _delivery_times(21) == _delivery_times(21)


def test_different_seed_different_latency_schedule():
    assert _delivery_times(21) != _delivery_times(22)


def test_same_seed_same_fault_decisions():
    def decisions(seed):
        plane = FaultPlane(seed=seed, loss_probability=0.5)
        return [plane.decide(Message(0, 1, "PING"), now=float(index)).deliver
                for index in range(100)]

    assert decisions(9) == decisions(9)
    assert decisions(9) != decisions(10)

"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        engine = SimulationEngine()
        fired = []
        for label in "abc":
            engine.schedule(1.0, lambda tag=label: fired.append(tag))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [5.0]

    def test_schedule_at_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: engine.schedule(1.0, lambda: fired.append("inner")))
        engine.run()
        assert fired == ["inner"]
        assert engine.now == 2.0


class TestExecution:
    def test_now_advances_to_event_time(self):
        engine = SimulationEngine()
        engine.schedule(4.5, lambda: None)
        engine.run()
        assert engine.now == 4.5

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_run_returns_event_count(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        assert engine.run() == 5
        assert engine.processed_events == 5

    def test_run_with_max_events(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i), lambda: None)
        assert engine.run(max_events=4) == 4
        assert engine.pending_events == 6

    def test_run_until(self):
        engine = SimulationEngine()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        engine.run_until(2.5)
        assert fired == [1.0, 2.0]
        assert engine.now == 2.5

    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_reset(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.processed_events == 0


class TestEvent:
    def test_ordering_by_time_then_sequence(self):
        early = Event(time=1.0, sequence=5, action=lambda: None)
        late = Event(time=2.0, sequence=1, action=lambda: None)
        tie = Event(time=1.0, sequence=6, action=lambda: None)
        assert early < late
        assert early < tie

    def test_fire_runs_action_unless_cancelled(self):
        fired = []
        event = Event(time=0.0, sequence=0, action=lambda: fired.append(1))
        event.fire()
        event.cancel()
        event.fire()
        assert fired == [1]

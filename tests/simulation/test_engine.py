"""Unit tests for the discrete-event engine."""

import time as _time

import pytest

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import NO_ARG, Event


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        engine = SimulationEngine()
        fired = []
        for label in "abc":
            engine.schedule(1.0, lambda tag=label: fired.append(tag))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [5.0]

    def test_schedule_at_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: engine.schedule(1.0, lambda: fired.append("inner")))
        engine.run()
        assert fired == ["inner"]
        assert engine.now == 2.0


class TestExecution:
    def test_now_advances_to_event_time(self):
        engine = SimulationEngine()
        engine.schedule(4.5, lambda: None)
        engine.run()
        assert engine.now == 4.5

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_run_returns_event_count(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        assert engine.run() == 5
        assert engine.processed_events == 5

    def test_run_with_max_events(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i), lambda: None)
        assert engine.run(max_events=4) == 4
        assert engine.pending_events == 6

    def test_run_until(self):
        engine = SimulationEngine()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        engine.run_until(2.5)
        assert fired == [1.0, 2.0]
        assert engine.now == 2.5

    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_reset(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.processed_events == 0


class TestFastPaths:
    def test_schedule_call_passes_argument(self):
        engine = SimulationEngine()
        received = []
        engine.schedule_call(1.0, received.append, "payload")
        engine.run()
        assert received == ["payload"]

    def test_schedule_call_event_is_cancellable(self):
        engine = SimulationEngine()
        received = []
        event = engine.schedule_call(1.0, received.append, "payload")
        event.cancel()
        engine.run()
        assert received == []

    def test_schedule_call_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_call(-0.5, print, None)

    def test_push_call_fires_in_order_with_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("event"))
        engine.push_call(1.0, fired.append, "raw-early")
        engine.push_call(2.0, fired.append, "raw-tie-later")
        engine.run()
        # Ties break by scheduling order: the event entry was pushed first.
        assert fired == ["raw-early", "event", "raw-tie-later"]

    def test_cancel_actions_removes_matching_entries(self):
        engine = SimulationEngine()
        fired = []
        other = []
        append = fired.append  # one identity, like a registered handler
        engine.push_call(1.0, append, "a")
        engine.push_call(2.0, append, "b")
        engine.schedule_call(3.0, append, "c")
        engine.push_call(1.5, other.append, "other-action")
        removed = engine.cancel_actions(append)
        assert sorted(removed) == ["a", "b", "c"]
        engine.run()
        assert fired == []
        assert other == ["other-action"]
        assert engine.quiescent

    def test_run_until_quiescent_drains(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: engine.push_call(1.0, fired.append, "x"))
        executed = engine.run_until_quiescent()
        assert executed == 2
        assert fired == ["x"]
        assert engine.quiescent


class TestQuiescenceAccounting:
    def test_runnable_events_tracks_cancellation(self):
        engine = SimulationEngine()
        events = [engine.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert engine.runnable_events == 4
        events[0].cancel()
        events[2].cancel()
        assert engine.runnable_events == 2
        assert not engine.quiescent
        for event in events:
            event.cancel()
        assert engine.runnable_events == 0
        assert engine.quiescent

    def test_cancel_after_firing_does_not_corrupt_accounting(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.quiescent
        event.cancel()  # heartbeat stop() cancels already-fired ticks
        assert engine.runnable_events == 0
        assert engine.quiescent
        engine.schedule(1.0, lambda: None)
        assert engine.runnable_events == 1

    def test_mass_cancellation_compacts_queue(self):
        engine = SimulationEngine()
        keeper_fired = []
        events = [engine.schedule(float(i + 1), lambda: None)
                  for i in range(200)]
        keeper = engine.schedule(500.0, lambda: keeper_fired.append(1))
        for event in events:
            event.cancel()
        # Cancelled entries repeatedly outnumbered live ones: the queue was
        # compacted down (compaction stops below its minimum queue size,
        # so a few lazily-popped stragglers may remain).
        assert engine.pending_events < 64
        assert engine.runnable_events == 1
        engine.run()
        assert keeper_fired == [1]
        assert not keeper.cancelled

    def test_quiescent_is_constant_time_on_large_queues(self):
        """Regression: quiescent must answer from the incremental counter.

        10⁵ pending events, 10⁴ polls: an O(n) scan would need ~10⁹ steps
        (minutes); the counter comparison finishes in well under a second
        even on a slow machine.
        """
        engine = SimulationEngine()
        for index in range(100_000):
            engine.schedule(float(index % 97) + 1.0, lambda: None)
        started = _time.perf_counter()
        for _ in range(10_000):
            engine.quiescent
        elapsed = _time.perf_counter() - started
        assert elapsed < 1.0
        assert not engine.quiescent
        assert engine.pending_events == 100_000


class TestEvent:
    def test_ordering_by_time_then_sequence(self):
        early = Event(time=1.0, sequence=5, action=lambda: None)
        late = Event(time=2.0, sequence=1, action=lambda: None)
        tie = Event(time=1.0, sequence=6, action=lambda: None)
        assert early < late
        assert early < tie

    def test_fire_runs_action_unless_cancelled(self):
        fired = []
        event = Event(time=0.0, sequence=0, action=lambda: fired.append(1))
        event.fire()
        event.cancel()
        event.fire()
        assert fired == [1]

    def test_fire_passes_argument_when_present(self):
        fired = []
        event = Event(time=0.0, sequence=0, action=fired.append, arg="x")
        event.fire()
        assert fired == ["x"]
        assert Event(time=0.0, sequence=1, action=fired.append).arg is NO_ARG

    def test_events_are_slotted(self):
        event = Event(time=0.0, sequence=0, action=lambda: None)
        assert not hasattr(event, "__dict__")
        with pytest.raises(AttributeError):
            event.arbitrary_attribute = 1

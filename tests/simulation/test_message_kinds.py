"""Regression pin: the protocol's sent and handled message-kind sets match.

Uses the simlint SIM004 collectors over the shipped sources, so a new
``send(..., "KIND")`` without an ``_on_kind`` handler (or a dead handler)
fails here with a named diff even before the CI lint gate runs.

The crash-at-any-message hardening (operation watchdogs, idempotent
retries, the fuzz harness) deliberately added **no** new kinds: a retry
re-sends one of the existing eighteen, and timeouts are engine-scheduled
events, not messages.  The partition-merge subsystem *did* grow the set
— deliberately, as a genuinely new protocol phase: ``MERGE_DIGEST``
(version-stamped anti-entropy flood across a healed cut) and
``MERGE_RECONCILE`` (its bidirectional ack) have no equivalent among the
repair kinds, whose scrubs presume a shared live kernel rather than two
diverged forks.  The pin is now twenty; further growth still needs a
design reason, not just a new code path.
"""

from pathlib import Path

from repro.lint import iter_source_files, parse_modules
from repro.lint.rules import collect_handled_kinds, collect_sent_kinds

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Every message kind of the protocol plane, each both sent and handled.
EXPECTED_KINDS = frozenset({
    "ADD_OBJECT", "CREATE_OBJECT",
    "CLOSE_REQUEST", "CLOSE_REPLY", "CLOSE_DECLARE", "CLOSE_LEAVE",
    "SEARCH_LONG_LINK", "LONG_LINK_ESTABLISHED", "LONG_LINK_RETARGET",
    "REGION_UPDATE", "BACKLINK_TRANSFER", "BACKLINK_REMOVE",
    "VIEW_SCRUB", "SUSPECT_NOTIFY",
    "MERGE_DIGEST", "MERGE_RECONCILE",
    "PING", "PONG",
    "QUERY", "QUERY_ANSWER",
})


def collect():
    modules, errors = parse_modules(iter_source_files([SRC]))
    assert errors == []
    return collect_sent_kinds(modules), collect_handled_kinds(modules)


def test_sent_kinds_equal_handled_kinds():
    sent, handled = collect()
    assert set(sent) == set(handled), (
        f"unhandled kinds: {sorted(set(sent) - set(handled))}; "
        f"dead handlers: {sorted(set(handled) - set(sent))}")


def test_kind_set_is_pinned():
    sent, handled = collect()
    assert set(sent) == EXPECTED_KINDS
    assert set(handled) == EXPECTED_KINDS


def test_every_kind_dispatches_to_a_real_handler():
    """The AST-level pin above matches the runtime dispatch convention.

    ``ProtocolNode.handle`` resolves ``kind`` → ``_on_<kind.lower()>``
    lazily, so check the handler attributes directly.
    """
    from repro.simulation.protocol import ProtocolNode

    for kind in EXPECTED_KINDS:
        assert callable(getattr(ProtocolNode, f"_on_{kind.lower()}", None)), \
            f"no handler for {kind}"

"""Tests of the partition-merge subsystem.

Covers the k-way ``SplitSpec`` (side tracking, heal hooks, the pinned
in-flight semantics of both ``deliver`` and ``cut`` windows), the
partition damage census, the split-brain runtime (per-side service,
published-id collisions, the deterministic union rebuild), the
anti-entropy merge protocol, the full harness scenario matrix (2-way,
asymmetric, k-way, flapping), and a Hypothesis property pinning post-heal
views byte-identical to a never-split oracle overlay built from the
union population.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.delaunay import DelaunayTriangulation
from repro.simulation.engine import SimulationEngine
from repro.simulation.failures import assess_partition_damage
from repro.simulation.faults import (FaultPlane, HeartbeatDetector,
                                     RepairProtocol)
from repro.simulation.merge import MergeProtocol, PartitionRuntime, ProtocolMergeHarness
from repro.simulation.network import ConstantLatency, Message, Network
from repro.simulation.protocol import ProtocolSimulator
from repro.core.config import VoroNetConfig
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


def build_simulator(count=40, seed=7, num_long_links=1, capacity_slack=16):
    config = VoroNetConfig(n_max=4 * (count + capacity_slack),
                           num_long_links=num_long_links, seed=seed)
    simulator = ProtocolSimulator(config, seed=seed,
                                  faults=FaultPlane(seed=seed + 1))
    positions = generate_objects(UniformDistribution(), count,
                                 RandomSource(seed + 3))
    simulator.bulk_join(positions)
    return simulator


def split_halves(simulator):
    live = sorted(simulator.nodes)
    return [live[: len(live) // 2], live[len(live) // 2:]]


def stabilize_sides(simulator, runtime):
    """Detect the cut and repair each side against its own fork.

    Split-era joins need this first: an introducer whose view still
    references the far side would wedge the carve on dropped messages
    (the harness always stabilises before inserting; these unit tests
    mirror it).
    """
    detector = HeartbeatDetector(simulator)
    for _ in range(8):
        detector.run_round()
    for index in range(runtime.num_sides):
        with runtime.side(index):
            RepairProtocol(simulator, detector=detector,
                           scope=runtime.side_members(index)).repair()


# ----------------------------------------------------------------------
# SplitSpec
# ----------------------------------------------------------------------
class TestSplitSpec:
    def test_validation(self):
        plane = FaultPlane(seed=1)
        with pytest.raises(ValueError):
            plane.split([[1, 2]], start=0.0)               # one side only
        with pytest.raises(ValueError):
            plane.split([[1], [1, 2]], start=0.0)          # id on two sides
        with pytest.raises(ValueError):
            plane.split([[1], [2]], start=5.0, end=1.0)    # ends before start
        with pytest.raises(ValueError):
            plane.split([[1], [2]], start=0.0, in_flight="nope")

    def test_side_tracking_and_assignment(self):
        plane = FaultPlane(seed=2)
        spec = plane.split([[1, 2], [3, 4]], start=0.0)
        assert spec.side_of(1) == 0 and spec.side_of(4) == 1
        assert spec.side_of(99) is None
        assert spec.separates(1, 3) and not spec.separates(1, 2)
        # Unassigned ids are never cut — a joiner not yet claimed by a
        # side must not be silently isolated.
        assert not spec.separates(1, 99)
        spec.assign(99, 1)
        assert spec.side_of(99) == 1 and spec.separates(1, 99)

    def test_cross_side_messages_dropped_as_partition(self):
        plane = FaultPlane(seed=3)
        plane.split([[1, 2], [3, 4]], start=0.0, end=10.0)
        crossing = Message(sender=1, recipient=3, kind="X")
        internal = Message(sender=3, recipient=4, kind="X")
        assert not plane.decide(crossing, 5.0).deliver
        assert plane.decide(internal, 5.0).deliver
        assert plane.decide(crossing, 10.0).deliver        # half-open end
        assert plane.drops_by_reason["partition"] == 1

    def test_heal_hooks_fire_once_per_explicit_heal(self):
        plane = FaultPlane(seed=4)
        healed = []
        plane.on_heal(healed.append)
        spec = plane.split([[1], [2]], start=0.0)
        assert plane.heal_partitions() == 1
        assert healed == [spec]
        assert not spec.active(1.0)
        # Nothing left: a second heal is a no-op and refires nothing.
        assert plane.heal_partitions() == 0
        assert healed == [spec]

    def test_clock_expired_window_is_passive(self):
        """A window that lapses on the clock does not fire heal hooks."""
        plane = FaultPlane(seed=5)
        healed = []
        plane.on_heal(healed.append)
        plane.split([[1], [2]], start=0.0, end=10.0)
        crossing = Message(sender=1, recipient=2, kind="X")
        assert plane.decide(crossing, 20.0).deliver        # expired; pruned
        assert healed == []
        assert plane.heal_partitions() == 0


# ----------------------------------------------------------------------
# in-flight semantics (the audited pre-split-send edge case)
# ----------------------------------------------------------------------
class TestSplitInFlightSemantics:
    """Messages sent before a window opens but delivered inside it.

    The committed default keeps the pinned send-time rule: a packet on
    the wire when the cut lands still arrives (``deliver``).  The
    explicit ``in_flight="cut"`` mode models physical-link severance:
    delivery *time* inside an active cross-side window drops the message
    with its own drop reason.
    """

    def _network(self, in_flight):
        engine = SimulationEngine()
        plane = FaultPlane(seed=6)
        network = Network(engine, latency=ConstantLatency(5.0), faults=plane)
        delivered = []
        network.register(1, delivered.append)
        network.register(2, delivered.append)
        plane.split([[1], [2]], start=2.0, end=20.0, in_flight=in_flight)
        # Sent at t=0 (before the window), delivered at t=5 (inside it).
        network.send(Message(sender=1, recipient=2, kind="X"))
        engine.run()
        return network, plane, delivered

    def test_default_deliver_keeps_send_time_rule(self):
        network, plane, delivered = self._network("deliver")
        assert len(delivered) == 1
        assert network.messages_lost == 0
        assert plane.in_flight_cuts == 0

    def test_cut_mode_drops_at_delivery_time(self):
        network, plane, delivered = self._network("cut")
        assert delivered == []
        assert network.messages_lost == 1
        assert plane.drops_by_reason["partition_in_flight"] == 1

    def test_cut_mode_counter_cleared_on_heal(self):
        plane = FaultPlane(seed=7)
        plane.split([[1], [2]], start=0.0, in_flight="cut")
        assert plane.in_flight_cuts == 1
        plane.heal_partitions()
        assert plane.in_flight_cuts == 0

    def test_cut_mode_spares_deliveries_outside_the_window(self):
        # Sent at t=0 (pre-window), delivered at t=5 — but the window is
        # [7, 9): neither the send-time rule nor the delivery-time rule
        # touches it.
        engine = SimulationEngine()
        plane = FaultPlane(seed=8)
        network = Network(engine, latency=ConstantLatency(5.0), faults=plane)
        delivered = []
        network.register(1, delivered.append)
        network.register(2, delivered.append)
        plane.split([[1], [2]], start=7.0, end=9.0, in_flight="cut")
        network.send(Message(sender=1, recipient=2, kind="X"))
        engine.run()
        assert len(delivered) == 1
        assert network.messages_lost == 0


# ----------------------------------------------------------------------
# partition damage census
# ----------------------------------------------------------------------
class TestPartitionDamage:
    def test_census_counts_only_cross_side_references(self):
        simulator = build_simulator(count=40, seed=21)
        plane = simulator.faults
        sides = split_halves(simulator)
        spec = plane.split(sides, start=simulator.engine.now)
        report = assess_partition_damage(simulator.nodes, spec.side_of)
        assert report.sides == 2
        assert report.total_cross_references > 0
        assert report.cross_voronoi_entries > 0
        assert report.boundary_objects > 0
        # Recount boundary objects directly from the views: every counted
        # object genuinely holds a cross-side reference.
        boundary = 0
        for object_id in sorted(simulator.nodes):
            node = simulator.nodes[object_id]
            own = spec.side_of(object_id)
            refs = (set(node.voronoi) - {object_id}) | set(node.close)
            refs |= {link.neighbor for link in node.long_links}
            refs |= {source for source, _index in node.back_links}
            if any(spec.side_of(peer) not in (None, own) for peer in refs):
                boundary += 1
        assert boundary == report.boundary_objects

    def test_unassigned_ids_never_counted(self):
        simulator = build_simulator(count=20, seed=22)
        report = assess_partition_damage(simulator.nodes, lambda _id: None)
        assert report.total_cross_references == 0
        assert report.boundary_objects == 0


# ----------------------------------------------------------------------
# PartitionRuntime
# ----------------------------------------------------------------------
class TestPartitionRuntime:
    def test_open_split_requires_full_partition_of_population(self):
        simulator = build_simulator(count=20, seed=23)
        runtime = PartitionRuntime(simulator)
        live = sorted(simulator.nodes)
        with pytest.raises(ValueError):
            runtime.open_split([live[:5], live[6:]])       # one id missing
        runtime.open_split([live[:10], live[10:]])
        with pytest.raises(RuntimeError):
            runtime.open_split([live[:10], live[10:]])     # already open

    def test_both_side_inserts_mint_colliding_published_ids(self):
        simulator = build_simulator(count=30, seed=24)
        runtime = PartitionRuntime(simulator)
        runtime.open_split(split_halves(simulator))
        stabilize_sides(simulator, runtime)
        rng = RandomSource(99)
        a = runtime.side_join(0, rng.random_point())
        b = runtime.side_join(1, rng.random_point())
        assert a.outcome == "completed" and b.outcome == "completed"
        # Distinct objects, same side-local published identity.
        assert a.object_id != b.object_id
        assert (simulator.nodes[a.object_id].published_id
                == simulator.nodes[b.object_id].published_id)

    def test_heal_resolves_collisions_lowest_id_wins(self):
        simulator = build_simulator(count=30, seed=25)
        runtime = PartitionRuntime(simulator)
        runtime.open_split(split_halves(simulator))
        stabilize_sides(simulator, runtime)
        rng = RandomSource(100)
        reports = [runtime.side_join(side, rng.random_point())
                   for side in (0, 1) for _ in range(2)]
        ids = [r.object_id for r in reports if r.outcome == "completed"]
        summary = runtime.heal()
        assert summary.id_collisions_resolved >= 1
        published = [simulator.nodes[i].published_id
                     for i in ids if i in simulator.nodes]
        assert len(published) == len(set(published))       # all unique now
        # The winner of each collision is the lowest object id: it kept
        # the original side-local identity (below the healed allocator's
        # fresh range); losers re-published above it.
        winner = min(ids)
        assert simulator.nodes[winner].published_id < min(
            p for i, p in zip(ids, published) if i != winner)

    def test_heal_unions_kernel_and_dominates_side_versions(self):
        simulator = build_simulator(count=30, seed=26)
        runtime = PartitionRuntime(simulator)
        runtime.open_split(split_halves(simulator))
        stabilize_sides(simulator, runtime)
        rng = RandomSource(101)
        runtime.side_join(0, rng.random_point())
        runtime.side_join(1, rng.random_point())
        summary = runtime.heal()
        assert summary.union_inserts >= 2
        assert sorted(simulator.kernel.vertex_ids()) == sorted(simulator.nodes)
        assert summary.union_version > max(summary.side_versions)

    def test_side_queries_serve_from_forked_tessellation(self):
        simulator = build_simulator(count=30, seed=27)
        runtime = PartitionRuntime(simulator)
        sides = split_halves(simulator)
        runtime.open_split(sides)
        # A target owned (globally) by side 1 still gets *an* answer from
        # side 0's fork after per-side stabilisation is not required for
        # this to terminate: the walk either answers or dies at the cut.
        answer = runtime.side_query(0, (0.5, 0.5))
        assert answer is None or answer["owner"] in simulator.nodes


# ----------------------------------------------------------------------
# merge protocol + harness scenario matrix
# ----------------------------------------------------------------------
def run_harness(**kwargs):
    defaults = dict(num_objects=40, seed=31, queries_per_side=4,
                    degraded_queries_per_side=2, parity_queries=8)
    defaults.update(kwargs)
    return ProtocolMergeHarness(**defaults).run()


class TestMergeHarness:
    def test_two_way_split_heals_to_oracle_parity(self):
        report = run_harness(seed=31)
        assert report.converged
        assert report.final_verify_problems == 0
        assert report.oracle_view_parity
        assert report.routing_parity_mismatches == 0
        merge = report.cycle_reports[0]
        assert merge.boundary_edges > 0
        assert merge.digest_messages > 0
        assert merge.id_collisions_resolved >= 1
        assert merge.time_to_converge > 0

    def test_availability_split_degrades_then_recovers(self):
        report = run_harness(seed=32, queries_per_side=8,
                             degraded_queries_per_side=8)
        availability = report.availability
        # Stable phase: every side serves from its own consistent fork.
        assert availability["stable_success_rate"] == 1.0
        # Degraded phase: some walks died crossing the cut.
        assert availability["degraded_success_rate"] < 1.0
        assert availability["time_to_converge_max"] > 0
        assert set(availability["sides"]) == {"0", "1"}

    def test_asymmetric_sides(self):
        report = run_harness(seed=33, num_objects=60,
                             side_fractions=(0.8, 0.2))
        assert report.converged and report.oracle_view_parity
        assert all(d.sides == 2 for d in report.damage_reports)

    def test_three_way_split(self):
        report = run_harness(seed=34, num_objects=60, num_sides=3)
        assert report.converged and report.oracle_view_parity
        assert report.routing_parity_mismatches == 0

    def test_flapping_partitions_stay_convergent(self):
        report = run_harness(seed=35, num_objects=50, cycles=3)
        assert report.converged
        assert len(report.cycle_reports) == 3
        assert all(c.converged for c in report.cycle_reports)
        assert report.oracle_view_parity

    def test_reproducible_from_seed(self):
        a = run_harness(seed=36)
        b = run_harness(seed=36)
        assert a.messages == b.messages
        assert a.availability == b.availability
        assert [c.rounds for c in a.cycle_reports] == \
               [c.rounds for c in b.cycle_reports]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtocolMergeHarness(num_sides=1)
        with pytest.raises(ValueError):
            ProtocolMergeHarness(num_sides=2, side_fractions=(1.0,))
        with pytest.raises(ValueError):
            ProtocolMergeHarness(num_objects=10, num_sides=2)


class TestMergeProtocolUnits:
    def test_boundary_edges_cross_the_healed_cut(self):
        simulator = build_simulator(count=30, seed=41)
        runtime = PartitionRuntime(simulator)
        spec = runtime.open_split(split_halves(simulator))
        summary = runtime.heal()
        merge = MergeProtocol(simulator, summary.spec, epoch_base=1)
        edges = merge.boundary_edges()
        assert edges
        for u, v in edges:
            assert u < v
            assert spec.side_of(u) != spec.side_of(v)

    def test_merge_reports_convergence_and_counts(self):
        simulator = build_simulator(count=30, seed=42)
        runtime = PartitionRuntime(simulator)
        runtime.open_split(split_halves(simulator))
        summary = runtime.heal()
        report = MergeProtocol(simulator, summary.spec,
                               epoch_base=summary.epoch).run(summary)
        assert report.converged
        assert simulator.verify_views() == []
        assert report.messages >= report.digest_messages > 0


# ----------------------------------------------------------------------
# Hypothesis: merge convergence equals the never-split oracle
# ----------------------------------------------------------------------
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**16),
       num_sides=st.sampled_from([2, 3]),
       heavy=st.floats(0.3, 0.7),
       inserts=st.integers(1, 3))
def test_merge_matches_never_split_oracle(seed, num_sides, heavy, inserts):
    """Random splits + random both-side inserts heal to the union oracle.

    The oracle is a fresh tessellation built directly from the union of
    survivors and split-era joiners; the merged overlay's per-node views
    must equal the oracle neighbourhoods exactly.
    """
    fractions = None
    if num_sides == 2:
        fractions = (heavy, 1.0 - heavy)
    report = run_harness(seed=seed, num_objects=45, num_sides=num_sides,
                         side_fractions=fractions,
                         inserts_per_side=inserts,
                         queries_per_side=2, degraded_queries_per_side=1,
                         parity_queries=6)
    assert report.converged
    assert report.oracle_view_parity
    assert report.routing_parity_mismatches == 0

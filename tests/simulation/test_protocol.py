"""Unit and integration tests for the message-level VoroNet protocol."""

import numpy as np
import pytest

from repro.core import VoroNetConfig
from repro.geometry.point import distance
from repro.simulation.protocol import ProtocolSimulator
from repro.simulation.trace import TraceRecorder


@pytest.fixture
def simulator(numpy_rng):
    sim = ProtocolSimulator(VoroNetConfig(n_max=300, seed=5), seed=5)
    for p in numpy_rng.random((80, 2)):
        sim.join(tuple(p))
    return sim


class TestMessageDispatch:
    def test_unknown_message_kind_raises(self, simulator):
        from repro.simulation.network import Message

        node = simulator.node(simulator.object_ids()[0])
        with pytest.raises(ValueError, match="unknown message kind"):
            node.handle(Message(sender=1, recipient=node.object_id,
                                kind="NO_SUCH_KIND"))

    def test_dispatch_table_resolves_kinds_once(self, simulator):
        from repro.simulation.protocol import ProtocolNode

        # The fixture's joins exercised the protocol: the per-kind cache
        # holds resolved handlers shared across nodes.
        assert "ADD_OBJECT" in ProtocolNode._DISPATCH
        assert ProtocolNode._DISPATCH["ADD_OBJECT"] is ProtocolNode._on_add_object


class TestJoins:
    def test_first_join_costs_no_messages(self):
        sim = ProtocolSimulator(VoroNetConfig(n_max=16, seed=1), seed=1)
        report = sim.join((0.5, 0.5))
        assert report.messages == 0
        assert report.routing_hops == 0

    def test_joins_grow_membership(self, simulator):
        assert len(simulator) == 80

    def test_local_views_match_kernel(self, simulator):
        assert simulator.verify_views() == []

    def test_join_message_cost_is_local(self, simulator, numpy_rng):
        """Joins cost routing + O(1) maintenance messages, far below overlay size."""
        reports = [simulator.join(tuple(p)) for p in numpy_rng.random((20, 2))]
        mean_messages = np.mean([r.messages for r in reports])
        assert mean_messages < len(simulator) / 2

    def test_join_with_explicit_introducer(self, simulator):
        introducer = simulator.object_ids()[0]
        report = simulator.join((0.123, 0.456), introducer=introducer)
        assert report.object_id in simulator.object_ids()
        assert simulator.verify_views() == []

    def test_every_object_has_configured_long_links(self, simulator):
        for oid in simulator.object_ids():
            node = simulator.node(oid)
            assert len(node.long_links) <= simulator.config.num_long_links
        with_links = sum(1 for oid in simulator.object_ids()
                         if len(simulator.node(oid).long_links) ==
                         simulator.config.num_long_links)
        assert with_links >= len(simulator) - 1  # the very first object has none

    def test_close_neighbors_are_symmetric(self, simulator):
        for oid in simulator.object_ids():
            for close_id in simulator.node(oid).close:
                assert oid in simulator.node(close_id).close


class TestBulkJoins:
    def test_bulk_join_builds_consistent_views(self, numpy_rng):
        sim = ProtocolSimulator(VoroNetConfig(n_max=600, seed=6), seed=6)
        positions = [tuple(p) for p in numpy_rng.random((150, 2))]
        report = sim.bulk_join(positions)
        assert len(sim) == 150
        assert report.object_ids == list(range(150))
        assert sim.verify_views() == []

    def test_bulk_join_counts_messages_by_phase(self, numpy_rng):
        sim = ProtocolSimulator(VoroNetConfig(n_max=600, seed=6), seed=6)
        report = sim.bulk_join([tuple(p) for p in numpy_rng.random((60, 2))])
        assert report.messages > 0
        assert sum(report.phase_messages.values()) == report.messages
        for phase in ("carve", "views", "close", "long_links"):
            assert phase in report.phase_messages
        assert sim.metrics.counter("joins") == 60
        assert sim.metrics.histogram_summary("bulk_join_messages")["count"] == 1

    def test_bulk_join_records_phase_trace(self, numpy_rng):
        from repro.simulation.trace import TraceRecorder

        trace = TraceRecorder(enabled=True)
        sim = ProtocolSimulator(VoroNetConfig(n_max=600, seed=6), seed=6,
                                trace=trace)
        sim.bulk_join([tuple(p) for p in numpy_rng.random((40, 2))])
        phases = {r.details["phase"] for r in trace.records("bulk_join_phase")}
        assert "views" in phases
        assert trace.last("bulk_join_phase") is not None

    def test_empty_batch_is_a_noop(self):
        sim = ProtocolSimulator(VoroNetConfig(n_max=64, seed=6), seed=6)
        report = sim.bulk_join([])
        assert report.object_ids == []
        assert report.messages == 0
        assert len(sim) == 0

    def test_duplicate_positions_are_rejected_up_front(self):
        sim = ProtocolSimulator(VoroNetConfig(n_max=64, seed=6), seed=6)
        sim.join((0.5, 0.5))
        with pytest.raises(ValueError):
            sim.bulk_join([(0.25, 0.25), (0.5, 0.5)])
        with pytest.raises(ValueError):
            sim.bulk_join([(0.25, 0.25), (0.25, 0.25)])
        # Nothing was mutated: only the sequential join is published.
        assert len(sim) == 1
        assert sim.verify_views() == []

    def test_invalid_chunk_size_is_rejected(self):
        sim = ProtocolSimulator(VoroNetConfig(n_max=64, seed=6), seed=6)
        with pytest.raises(ValueError):
            sim.bulk_join([(0.25, 0.25)], chunk_size=0)

    def test_bulk_join_requires_quiescent_engine(self):
        sim = ProtocolSimulator(VoroNetConfig(n_max=64, seed=6), seed=6)
        sim.engine.schedule(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.bulk_join([(0.25, 0.25)])

    def test_sequential_operations_after_bulk_join(self, numpy_rng):
        sim = ProtocolSimulator(VoroNetConfig(n_max=600, seed=6), seed=6)
        ids = sim.bulk_join([tuple(p) for p in numpy_rng.random((80, 2))]).object_ids
        report = sim.join((0.512, 0.488))
        assert report.messages > 0
        sim.leave(ids[10])
        assert sim.query((0.5, 0.5)).owner in sim.object_ids()
        assert sim.verify_views() == []

    def test_small_chunks_give_identical_structure(self, numpy_rng):
        positions = [tuple(p) for p in numpy_rng.random((60, 2))]
        small = ProtocolSimulator(VoroNetConfig(n_max=300, seed=6), seed=6)
        small.bulk_join(positions, chunk_size=7)
        default = ProtocolSimulator(VoroNetConfig(n_max=300, seed=6), seed=6)
        default.bulk_join(positions)
        for oid in default.object_ids():
            assert set(small.node(oid).voronoi) == set(default.node(oid).voronoi)
            assert set(small.node(oid).close) == set(default.node(oid).close)
        assert small.verify_views() == []


class TestLeaves:
    def test_leave_removes_object(self, simulator):
        victim = simulator.object_ids()[10]
        simulator.leave(victim)
        assert victim not in simulator.object_ids()

    def test_views_consistent_after_leaves(self, simulator, numpy_rng):
        victims = numpy_rng.choice(simulator.object_ids(), size=25, replace=False)
        for victim in victims:
            simulator.leave(int(victim))
        assert simulator.verify_views() == []

    def test_leave_message_cost_is_constant_like(self, simulator, numpy_rng):
        victims = numpy_rng.choice(simulator.object_ids(), size=20, replace=False)
        reports = [simulator.leave(int(v)) for v in victims]
        assert np.mean([r.messages for r in reports]) < 40

    def test_leave_unknown_raises(self, simulator):
        with pytest.raises(KeyError):
            simulator.leave(10_000)

    def test_long_links_survive_endpoint_departure(self, simulator):
        """When a long-link endpoint leaves, the link is re-delegated to the
        object now owning the target point."""
        # Find an object that is the endpoint of someone's long link.
        endpoint = None
        for oid in simulator.object_ids():
            if simulator.node(oid).back_links:
                endpoint = oid
                break
        assert endpoint is not None
        sources = [source for (source, _idx) in simulator.node(endpoint).back_links]
        simulator.leave(endpoint)
        for source in sources:
            if source not in simulator.object_ids():
                continue
            for link in simulator.node(source).long_links:
                assert link.neighbor != endpoint
        assert simulator.verify_views() == []


class TestQueries:
    def test_query_reaches_true_owner(self, simulator, numpy_rng):
        for _ in range(15):
            target = tuple(numpy_rng.random(2))
            report = simulator.query(target)
            nearest = min(simulator.object_ids(),
                          key=lambda i: distance(simulator.node(i).position, target))
            assert distance(simulator.node(report.owner).position, target) == \
                pytest.approx(distance(simulator.node(nearest).position, target))

    def test_query_messages_include_answer(self, simulator):
        report = simulator.query((0.3, 0.3))
        assert report.messages >= report.routing_hops

    def test_query_on_empty_simulator_raises(self):
        with pytest.raises(RuntimeError):
            ProtocolSimulator(seed=1).query((0.5, 0.5))

    def test_query_with_explicit_start(self, simulator):
        start = simulator.object_ids()[3]
        report = simulator.query((0.9, 0.1), start=start)
        assert report.owner in simulator.object_ids()


class TestViewSizeAndTrace:
    def test_mean_view_size_is_small(self, simulator):
        assert simulator.mean_view_size() < 20

    def test_mean_view_size_empty(self):
        assert ProtocolSimulator(seed=1).mean_view_size() == 0.0

    def test_trace_records_messages_when_enabled(self, numpy_rng):
        trace = TraceRecorder(enabled=True)
        sim = ProtocolSimulator(VoroNetConfig(n_max=64, seed=2), seed=2, trace=trace)
        for p in numpy_rng.random((10, 2)):
            sim.join(tuple(p))
        kinds = {r.details["message_kind"] for r in trace.records("send")}
        assert "ADD_OBJECT" in kinds
        assert "CREATE_OBJECT" in kinds

    def test_duplicate_position_join_is_refused(self):
        sim = ProtocolSimulator(VoroNetConfig(n_max=64, seed=3), seed=3)
        sim.join((0.5, 0.5))
        sim.join((0.25, 0.75))
        sim.join((0.75, 0.25))
        before = len(sim)
        sim.join((0.5, 0.5))
        assert len(sim) == before

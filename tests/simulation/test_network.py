"""Unit tests for the message-passing network layer."""

import pytest

from repro.simulation.engine import SimulationEngine
from repro.simulation.network import (
    ConstantLatency,
    Message,
    Network,
    UniformLatency,
)
from repro.utils.rng import RandomSource


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def network(engine):
    return Network(engine, ConstantLatency(2.0))


class TestDelivery:
    def test_message_delivered_to_handler(self, engine, network):
        received = []
        network.register(1, received.append)
        network.send(Message(sender=0, recipient=1, kind="PING"))
        engine.run()
        assert len(received) == 1
        assert received[0].kind == "PING"

    def test_delivery_respects_latency(self, engine, network):
        times = []
        network.register(1, lambda m: times.append(engine.now))
        network.send(Message(sender=0, recipient=1, kind="PING"))
        engine.run()
        assert times == [2.0]

    def test_unregistered_recipient_drops_message(self, engine, network):
        network.send(Message(sender=0, recipient=9, kind="PING"))
        engine.run()
        assert network.messages_dropped == 1

    def test_unregister_stops_delivery(self, engine, network):
        received = []
        network.register(1, received.append)
        network.unregister(1)
        network.send(Message(sender=0, recipient=1, kind="PING"))
        engine.run()
        assert received == []
        assert not network.is_registered(1)

    def test_self_messages_not_counted(self, engine, network):
        received = []
        network.register(1, received.append)
        network.send(Message(sender=1, recipient=1, kind="LOCAL"))
        engine.run()
        assert len(received) == 1
        assert network.messages_sent == 0

    def test_counters_by_kind(self, engine, network):
        network.register(1, lambda m: None)
        network.send(Message(sender=0, recipient=1, kind="A"))
        network.send(Message(sender=0, recipient=1, kind="A"))
        network.send(Message(sender=0, recipient=1, kind="B"))
        engine.run()
        assert network.sent_by_kind == {"A": 2, "B": 1}
        assert network.messages_sent == 3
        assert network.messages_delivered == 3

    def test_snapshot_counters(self, engine, network):
        network.register(1, lambda m: None)
        network.send(Message(sender=0, recipient=1, kind="A"))
        engine.run()
        snapshot = network.snapshot_counters()
        assert snapshot["sent"] == 1
        assert snapshot["kind:A"] == 1


class TestLatencyModels:
    def test_constant_latency_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_latency_within_bounds(self):
        model = UniformLatency(1.0, 3.0, rng=RandomSource(1))
        message = Message(sender=0, recipient=1, kind="X")
        for _ in range(100):
            assert 1.0 <= model.sample(message) <= 3.0

    def test_uniform_latency_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 1.0)

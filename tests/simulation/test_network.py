"""Unit tests for the message-passing network layer."""

import pytest

from repro.simulation.engine import SimulationEngine
from repro.simulation.network import (
    ConstantLatency,
    Message,
    Network,
    UniformLatency,
)
from repro.utils.rng import RandomSource


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def network(engine):
    return Network(engine, ConstantLatency(2.0))


class TestDelivery:
    def test_message_delivered_to_handler(self, engine, network):
        received = []
        network.register(1, received.append)
        network.send(Message(sender=0, recipient=1, kind="PING"))
        engine.run()
        assert len(received) == 1
        assert received[0].kind == "PING"

    def test_delivery_respects_latency(self, engine, network):
        times = []
        network.register(1, lambda m: times.append(engine.now))
        network.send(Message(sender=0, recipient=1, kind="PING"))
        engine.run()
        assert times == [2.0]

    def test_unregistered_recipient_drops_message(self, engine, network):
        network.send(Message(sender=0, recipient=9, kind="PING"))
        engine.run()
        assert network.messages_dropped == 1

    def test_unregister_stops_delivery(self, engine, network):
        received = []
        network.register(1, received.append)
        network.unregister(1)
        network.send(Message(sender=0, recipient=1, kind="PING"))
        engine.run()
        assert received == []
        assert not network.is_registered(1)

    def test_self_messages_not_counted(self, engine, network):
        received = []
        network.register(1, received.append)
        network.send(Message(sender=1, recipient=1, kind="LOCAL"))
        engine.run()
        assert len(received) == 1
        assert network.messages_sent == 0

    def test_counters_by_kind(self, engine, network):
        network.register(1, lambda m: None)
        network.send(Message(sender=0, recipient=1, kind="A"))
        network.send(Message(sender=0, recipient=1, kind="A"))
        network.send(Message(sender=0, recipient=1, kind="B"))
        engine.run()
        assert network.sent_by_kind == {"A": 2, "B": 1}
        assert network.messages_sent == 3
        assert network.messages_delivered == 3

    def test_snapshot_counters(self, engine, network):
        network.register(1, lambda m: None)
        network.send(Message(sender=0, recipient=1, kind="A"))
        engine.run()
        snapshot = network.snapshot_counters()
        assert snapshot["sent"] == 1
        assert snapshot["kind:A"] == 1


class TestDropAccounting:
    def test_undeliverable_self_handoff_not_counted(self, engine, network):
        """Local hand-offs are free in send; their drops are free too."""
        network.send(Message(sender=5, recipient=5, kind="LOCAL"))
        engine.run()
        assert network.messages_dropped == 0
        assert network.messages_sent == 0
        assert network.messages_delivered == 0

    def test_unregister_voids_in_flight_messages_as_dropped(self, engine, network):
        received = []
        network.register(1, received.append)
        network.send(Message(sender=0, recipient=1, kind="PING"))
        network.unregister(1)  # message still in flight
        engine.run()
        assert received == []
        assert network.messages_dropped == 1
        assert network.messages_delivered == 0

    def test_unregister_voids_in_flight_self_handoff_uncounted(self, engine,
                                                               network):
        received = []
        network.register(1, received.append)
        network.send(Message(sender=1, recipient=1, kind="LOCAL"))
        network.unregister(1)
        engine.run()
        assert received == []
        assert network.messages_dropped == 0

    def test_unregister_voids_deliveries_to_replaced_handlers(self, engine,
                                                              network):
        """A departed node can never be handed a message, even one sent
        before its handler was replaced."""
        old_received, new_received = [], []
        network.register(1, old_received.append)
        network.send(Message(sender=0, recipient=1, kind="PING"))
        network.register(1, new_received.append)
        network.send(Message(sender=0, recipient=1, kind="PING"))
        network.unregister(1)
        engine.run()
        assert old_received == [] and new_received == []
        assert network.messages_dropped == 2

    def test_late_registration_still_delivers(self, engine, network):
        """A recipient registering while the message is in flight gets it
        (the unregistered-at-send slow path resolves at delivery time)."""
        received = []
        network.send(Message(sender=0, recipient=3, kind="PING"))
        network.register(3, received.append)
        engine.run()
        assert len(received) == 1
        assert network.messages_dropped == 0
        assert network.messages_delivered == 1

    def test_counters_reconcile_at_quiescence(self, engine, network):
        network.register(1, lambda message: None)
        network.send(Message(sender=0, recipient=1, kind="A"))
        network.send(Message(sender=0, recipient=9, kind="B"))  # dropped
        engine.run()
        snapshot = network.snapshot_counters()
        assert snapshot["sent"] == snapshot["delivered"] + snapshot["dropped"] \
            + snapshot["lost"]


class TestLatencyModels:
    def test_constant_latency_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_latency_within_bounds(self):
        model = UniformLatency(1.0, 3.0, rng=RandomSource(1))
        message = Message(sender=0, recipient=1, kind="X")
        for _ in range(100):
            assert 1.0 <= model.sample(message) <= 3.0

    def test_uniform_latency_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 1.0)

    def test_bind_rng_adopts_stream_only_when_defaulted(self):
        explicit = UniformLatency(1.0, 3.0, rng=RandomSource(1))
        reference = UniformLatency(1.0, 3.0, rng=RandomSource(1))
        explicit.bind_rng(RandomSource(999))
        message = Message(sender=0, recipient=1, kind="X")
        draws = [explicit.sample(message) for _ in range(10)]
        assert draws == [reference.sample(message) for _ in range(10)]

        defaulted = UniformLatency(1.0, 3.0)
        defaulted.bind_rng(RandomSource(7))
        rebound = UniformLatency(1.0, 3.0, rng=RandomSource(7))
        assert [defaulted.sample(message) for _ in range(10)] == \
            [rebound.sample(message) for _ in range(10)]

    def test_simulator_seeds_default_uniform_latency(self):
        """End-to-end reproducibility: an unseeded UniformLatency adopts a
        child of the simulator's seeded stream, so identical seeds give
        identical virtual timelines."""
        from repro.core.config import VoroNetConfig
        from repro.simulation.protocol import ProtocolSimulator

        def run(seed):
            simulator = ProtocolSimulator(
                VoroNetConfig(n_max=256, seed=seed), seed=seed,
                latency=UniformLatency(0.5, 2.5))
            rng = RandomSource(seed)
            for _ in range(12):
                simulator.join(rng.random_point())
            return (simulator.engine.now,
                    simulator.network.snapshot_counters())

        assert run(11) == run(11)
        # Different seeds must actually draw different latencies (the
        # pre-fix behaviour was an unseeded global default either way).
        assert run(11)[0] != run(12)[0]

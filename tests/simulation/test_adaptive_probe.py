"""Adaptive probe backoff: idle liveness cost shrinks, detection survives.

SWIM-style stride doubling on the tail edges (long links, back links,
sampled extras): an edge whose probe was answered is next probed after a
doubled stride, up to ``max_stride``; any miss snaps the stride back to 1.
The always-probed core (voronoi ∪ close) keeps the paper's O(voronoi
degree) per-node idle cost; the tail amortizes to ``tail/max_stride``.
"""

import pytest

from repro.core import VoroNetConfig
from repro.simulation.faults import (FaultPlane, HeartbeatConfig,
                                     HeartbeatDetector,
                                     ProtocolCrashInjector, RepairProtocol)
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


def build_simulator(count=150, seed=77, num_long_links=2, loss=0.0):
    config = VoroNetConfig(n_max=4 * count, num_long_links=num_long_links,
                           seed=seed)
    simulator = ProtocolSimulator(config, seed=seed,
                                  faults=FaultPlane(seed=seed + 1,
                                                    loss_probability=loss))
    positions = generate_objects(UniformDistribution(), count,
                                 RandomSource(seed))
    simulator.bulk_join(positions)
    return simulator


def pings(simulator):
    return simulator.network.sent_by_kind.get("PING", 0)


class TestConfig:
    def test_max_stride_validation(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(adaptive_backoff=True, max_stride=0)
        assert HeartbeatConfig(adaptive_backoff=True).max_stride == 8

    def test_off_by_default(self):
        assert not HeartbeatConfig().adaptive_backoff


class TestParityWhenDisabled:
    def test_disabled_config_matches_legacy_full_probe(self):
        """With the knob off the detector must take the byte-identical
        legacy full-probe path — same counters on twin overlays."""
        counters = []
        for adaptive in (False, None):
            simulator = build_simulator(count=80, seed=21)
            if adaptive is None:
                detector = HeartbeatDetector(simulator, interval=8.0,
                                             miss_threshold=2)
            else:
                detector = HeartbeatDetector(simulator, config=HeartbeatConfig(
                    interval=8.0, miss_threshold=2, adaptive_backoff=False))
            detector.run_rounds(3)
            counters.append(simulator.network.snapshot_counters())
        assert counters[0] == counters[1]

    def test_convergence_unchanged_when_disabled(self):
        """Detection + repair outcome is identical with the knob off."""
        reports = []
        for config in (None,
                       HeartbeatConfig(miss_threshold=3,
                                       adaptive_backoff=False)):
            simulator = build_simulator(count=100, seed=33)
            injector = ProtocolCrashInjector(simulator, rng=RandomSource(3))
            injector.crash_random(10)
            detector = (HeartbeatDetector(simulator, miss_threshold=3)
                        if config is None
                        else HeartbeatDetector(simulator, config=config))
            detector.run_rounds(4)
            report = RepairProtocol(simulator, detector=detector).repair()
            assert report.converged
            reports.append((sorted(detector.suspected()), report.rounds))
        assert reports[0] == reports[1]


class TestIdleCost:
    def test_steady_state_approaches_core_degree(self):
        """After the strides saturate, an idle round probes little more
        than the voronoi ∪ close core: the tail contributes ~1/max_stride
        of its edges per round."""
        config = HeartbeatConfig(adaptive_backoff=True, max_stride=8)
        simulator = build_simulator(count=150, seed=77)
        detector = HeartbeatDetector(simulator, config=config)
        per_round = []
        for _ in range(12):
            before = pings(simulator)
            detector.run_round()
            per_round.append(pings(simulator) - before)
        full = per_round[0]            # round 1 probes every monitored edge
        tail = full - min(per_round)   # tail edges = full - core-only rounds
        assert tail > 0
        # Strides saturate within ceil(log2(max_stride)) answered probes;
        # from then on each round costs at most core + tail/max_stride.
        steady = per_round[8:]
        assert max(steady) <= full - tail + tail / config.max_stride
        assert sum(per_round) < 12 * full
        assert detector.suspected() == {}

    def test_no_false_suspicion_from_backoff(self):
        simulator = build_simulator(count=100, seed=5)
        detector = HeartbeatDetector(simulator, config=HeartbeatConfig(
            adaptive_backoff=True, miss_threshold=2))
        assert detector.run_rounds(10) == []
        assert detector.suspected() == {}


class TestDetectionUnderBackoff:
    def test_crash_after_warmup_still_detected(self):
        """The dangerous window: strides are saturated (tail probed every
        8 rounds), then a peer crashes.  The first unanswered probe resets
        the edge's stride to 1, so the remaining misses accrue every round
        and detection lands within max_stride + miss_threshold rounds."""
        config = HeartbeatConfig(adaptive_backoff=True, max_stride=8,
                                 miss_threshold=3)
        simulator = build_simulator(count=100, seed=13)
        detector = HeartbeatDetector(simulator, config=config)
        detector.run_rounds(10)  # saturate the strides while healthy
        assert detector.suspected() == {}
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(4))
        victims = set(injector.crash_random(8))
        budget = config.max_stride + config.miss_threshold + 1
        detector.run_rounds(budget)
        for node in simulator.nodes.values():
            for peer in node.monitored_peers():
                if peer in victims:
                    assert peer in node.suspects
        report = RepairProtocol(simulator, detector=detector).repair()
        assert report.converged
        assert injector.assess_damage().total_stale_entries == 0
        assert simulator.verify_views() == []

    def test_missed_edge_reprobed_every_round(self):
        """Once a probe goes unanswered the edge must not back off again
        until it is heard from: each subsequent round probes it."""
        config = HeartbeatConfig(adaptive_backoff=True, max_stride=8,
                                 miss_threshold=4)
        simulator = build_simulator(count=60, seed=9)
        detector = HeartbeatDetector(simulator, config=config)
        detector.run_rounds(10)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(2))
        victim = injector.crash_random(1)[0]
        # Find a live prober holding victim as a *tail* (non-core) edge if
        # any exists; all probers of the victim must converge to miss
        # accrual every round regardless.
        detector.run_rounds(config.max_stride)  # everyone has missed once
        misses_before = {
            object_id: node.missed_heartbeats.get(victim, 0)
            for object_id, node in simulator.nodes.items()}
        detector.run_round()
        accruing = 0
        for object_id, node in simulator.nodes.items():
            before = misses_before[object_id]
            if (victim in node.monitored_peers() and before > 0
                    and victim not in node.suspects):
                assert node.missed_heartbeats.get(victim, 0) == before + 1
                accruing += 1
        # At least someone was still below the threshold and re-probed.
        assert accruing > 0 or any(
            victim in node.suspects for node in simulator.nodes.values())

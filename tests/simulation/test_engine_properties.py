"""Property tests of the discrete-event engine's ordering and accounting.

The engine rewrite (tuple-keyed heap, raw delivery entries, incremental
runnable counter, lazy compaction) must be observationally identical to
the specification: events fire in ``(time, sequence)`` order, cancellation
removes exactly the cancelled events, ``quiescent``/``runnable_events``
agree with a brute-force scan of the queue at every step, and compaction
never drops a runnable event.  A small interpreter drives random command
sequences against both the engine and a list-based oracle.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import SimulationEngine, _EVENT_ENTRY


def _scan_runnable(engine):
    """Brute-force count of runnable entries in the engine's queue."""
    count = 0
    for entry in engine._queue:
        if entry[3] is _EVENT_ENTRY and entry[2].cancelled:
            continue
        count += 1
    return count


class _Oracle:
    """Specification model: a sorted list of (time, seq, id, cancelled)."""

    def __init__(self):
        self.pending = []
        self.now = 0.0
        self.sequence = 0
        self.fired = []

    def schedule(self, delay):
        entry = [self.now + delay, self.sequence, self.sequence, False]
        self.sequence += 1
        heapq.heappush(self.pending, entry)
        return entry

    def _fire_next(self):
        entry = heapq.heappop(self.pending)
        if entry[3]:
            return
        self.now = entry[0]
        self.fired.append(entry[2])

    def run(self):
        while self.pending:
            self._fire_next()

    def run_until(self, time):
        while self.pending and self.pending[0][0] <= time:
            self._fire_next()
        self.now = max(self.now, time)

    def runnable(self):
        return sum(1 for entry in self.pending if not entry[3])


_COMMANDS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.floats(0.0, 10.0, allow_nan=False)),
        st.tuples(st.just("push_call"), st.floats(0.0, 10.0, allow_nan=False)),
        st.tuples(st.just("cancel"), st.integers(0, 200)),
        st.tuples(st.just("run_until"), st.floats(0.0, 12.0, allow_nan=False)),
        st.tuples(st.just("run"), st.just(0.0)),
    ),
    min_size=1, max_size=60,
)


class TestEngineAgainstOracle:
    @settings(max_examples=120, deadline=None)
    @given(commands=_COMMANDS)
    def test_interleaved_schedule_cancel_run(self, commands):
        """(time, sequence) ordering, accounting and quiescence all match
        the oracle under arbitrary interleavings."""
        engine = SimulationEngine()
        oracle = _Oracle()
        fired = []
        events = []  # (engine event, oracle entry) pairs, in creation order

        def make_action(event_id):
            return lambda: fired.append(event_id)

        for command, value in commands:
            if command == "schedule":
                oracle_entry = oracle.schedule(value)
                event = engine.schedule(value, make_action(oracle_entry[2]))
                events.append((event, oracle_entry))
            elif command == "push_call":
                # Raw entries share the ordering key space with events but
                # cannot be cancelled; fire through the same recorder.
                oracle_entry = oracle.schedule(value)
                engine.push_call(value, fired.append, oracle_entry[2])
                events.append((None, oracle_entry))
            elif command == "cancel":
                if events:
                    event, oracle_entry = events[value % len(events)]
                    if event is not None:
                        event.cancel()
                        oracle_entry[3] = True
            elif command == "run_until":
                target = engine.now + value
                engine.run_until(target)
                oracle.run_until(target)
            else:
                engine.run()
                oracle.run()
            # Quiescence bookkeeping is exact at every step.
            assert engine.runnable_events == _scan_runnable(engine)
            assert engine.quiescent == (engine.runnable_events == 0)
            assert engine.pending_events >= engine.runnable_events

        engine.run()
        oracle.run()
        assert fired == oracle.fired
        assert engine.quiescent
        assert engine.now == oracle.now or not oracle.fired

    @settings(max_examples=60, deadline=None)
    @given(
        total=st.integers(70, 160),
        cancel_stride=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_compaction_never_drops_runnable_events(self, total,
                                                    cancel_stride, seed):
        """Cancelling more than half the queue triggers compaction (the
        queue shrinks in place); every surviving runnable event still
        fires, in (time, sequence) order."""
        engine = SimulationEngine()
        fired = []
        survivors = []
        events = []
        for index in range(total):
            delay = float((index * 7 + seed) % 23)
            events.append((engine.schedule(delay, lambda i=index: fired.append(i)),
                           delay, index))
        for position, (event, delay, index) in enumerate(events):
            if position % (cancel_stride + 1) != 0:
                event.cancel()
            else:
                survivors.append((engine.now + delay, index))
        if total - len(survivors) > total // 2:
            # Compaction must have removed the cancelled majority.
            assert engine.pending_events <= len(survivors) + total // 2
        assert engine.runnable_events == len(survivors)
        engine.run()
        assert fired == [index for _time, index in sorted(survivors)]
        assert engine.quiescent

    @settings(max_examples=60, deadline=None)
    @given(
        delays=st.lists(st.floats(0.0, 5.0, allow_nan=False),
                        min_size=1, max_size=40),
        horizon=st.floats(0.0, 6.0, allow_nan=False),
    )
    def test_run_until_boundary_inclusive(self, delays, horizon):
        """run_until fires exactly the events with time <= horizon."""
        engine = SimulationEngine()
        fired = []
        for index, delay in enumerate(delays):
            engine.schedule(delay, lambda i=index: fired.append(i))
        engine.run_until(horizon)
        expected = [index for index, delay in sorted(
            enumerate(delays), key=lambda pair: (pair[1], pair[0]))
            if delay <= horizon]
        assert fired == expected
        assert engine.now >= horizon


# ----------------------------------------------------------------------
# timeout events (crash-at-any-message hardening)
# ----------------------------------------------------------------------
class TestTimeoutEventAccounting:
    """Watchdog timeout events obey the engine's quiescence contract.

    Operation watchdogs are armed and cancelled on the protocol hot path,
    so the O(1) quiescence counter must stay exact under any mix of
    cancellations, pokes and re-arms — and a perpetually-retrying
    operation (a watchdog that re-arms itself on every expiry) must be
    boundable by ``run(max_events)``, the round budget the fuzzing
    harness leans on.
    """

    def test_quiescence_counter_exact_under_cancelled_watchdogs(self):
        from repro.simulation.engine import Watchdog

        engine = SimulationEngine()
        dogs = [Watchdog(engine, 5.0 + index, lambda: None)
                for index in range(40)]
        for dog in dogs[::2]:
            dog.cancel()
        assert engine.runnable_events == _scan_runnable(engine) == 20
        engine.run()
        assert engine.quiescent
        assert engine.runnable_events == _scan_runnable(engine) == 0
        assert sum(dog.fired for dog in dogs) == 20

    @settings(max_examples=50, deadline=None)
    @given(
        total=st.integers(1, 80),
        cancel_stride=st.integers(1, 4),
        poke_stride=st.integers(1, 4),
        horizon=st.floats(0.0, 30.0, allow_nan=False),
    )
    def test_counter_matches_scan_under_watchdog_churn(self, total,
                                                       cancel_stride,
                                                       poke_stride, horizon):
        """Arm N watchdogs, cancel and poke strided subsets, run part way:
        the O(1) counter equals the brute-force queue scan at every stage,
        and cancelled watchdogs never fire."""
        from repro.simulation.engine import Watchdog

        engine = SimulationEngine()
        dogs = [Watchdog(engine, 1.0 + (index % 7), lambda: None)
                for index in range(total)]
        cancelled = set()
        for index, dog in enumerate(dogs):
            if index % (cancel_stride + 1) == 0:
                dog.cancel()
                cancelled.add(index)
            elif index % (poke_stride + 1) == 0:
                dog.poke()
        assert engine.runnable_events == _scan_runnable(engine)
        engine.run_until(horizon)
        assert engine.runnable_events == _scan_runnable(engine)
        engine.run()
        assert engine.quiescent
        assert engine.runnable_events == _scan_runnable(engine) == 0
        for index, dog in enumerate(dogs):
            assert dog.fired == (0 if index in cancelled else 1)

    def test_perpetual_retry_bounded_by_event_budget(self):
        """A watchdog that re-arms on every expiry models an operation
        that retries forever; run(max_events) bounds termination, and the
        engine is honestly non-quiescent afterwards."""
        from repro.simulation.engine import Watchdog

        engine = SimulationEngine()
        fires = []

        def expire():
            fires.append(engine.now)
            dog.rearm(dog.timeout * 2.0)  # exponential backoff, forever

        dog = Watchdog(engine, 1.0, expire)
        executed = engine.run(max_events=25)
        assert executed == 25
        assert len(fires) == 25
        assert fires == sorted(fires)
        assert not engine.quiescent       # the retry loop is still armed
        assert engine.runnable_events == _scan_runnable(engine) == 1
        dog.cancel()                      # budget exhausted: caller aborts
        assert engine.quiescent

    def test_poked_watchdog_reschedules_without_firing(self):
        """A poke inside the quiet window defers expiry: the fire handler
        runs only once, at last_progress + timeout, and the intermediate
        rescheduled event keeps the quiescence accounting exact."""
        from repro.simulation.engine import Watchdog

        engine = SimulationEngine()
        fired = []
        dog = Watchdog(engine, 4.0, lambda: fired.append(engine.now))
        engine.schedule(3.0, dog.poke)
        engine.run_until(5.0)             # original deadline has passed
        assert fired == []                # ...but progress deferred it
        assert engine.runnable_events == _scan_runnable(engine) == 1
        engine.run()
        assert fired == [7.0]
        assert engine.quiescent

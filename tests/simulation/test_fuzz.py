"""Tests of the crash-at-any-message fuzzing harness.

Three layers: unit checks of the schedule/outcome plumbing and the CLI,
replay determinism (the same triple produces byte-identical outcomes —
the property every failure report relies on), and a Hypothesis stateful
machine that interleaves joins, leaves and armed crash triggers against a
live simulator, healing and asserting clean convergence — Hypothesis
shrinks any failing interleaving to a minimal one.
"""

import json

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.core import VoroNetConfig
from repro.simulation.faults import (
    FaultPlane,
    HeartbeatDetector,
    ProtocolCrashInjector,
    RepairProtocol,
)
from repro.simulation.fuzz import (
    CrashEvent,
    CrashSchedule,
    CrashScheduleFuzzer,
    FuzzTrace,
    PartitionEvent,
    main,
)
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
class TestSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashSchedule(seed=1, message_index=0)
        with pytest.raises(ValueError):
            CrashSchedule(seed=1, message_index=5, victim_rank=-1)
        with pytest.raises(ValueError):
            CrashScheduleFuzzer(num_objects=2)
        with pytest.raises(ValueError):
            CrashScheduleFuzzer().run_sweep(0, 0)

    def test_triple_round_trips(self):
        schedule = CrashSchedule(seed=9, message_index=42, victim_rank=3)
        assert schedule.as_triple() == (9, 42, 3)

    def test_baseline_runs_fault_free(self):
        fuzzer = CrashScheduleFuzzer(num_objects=10, churn_events=4)
        outcome = fuzzer.run_schedule(
            CrashSchedule(seed=17, message_index=None))
        assert outcome.victim is None
        assert outcome.crash_phase is None
        assert outcome.converged
        assert not outcome.failed
        assert outcome.messages > 0
        assert outcome.verify_problems == 0
        assert outcome.pending_operations == ()

    def test_crash_fires_and_converges(self):
        fuzzer = CrashScheduleFuzzer(num_objects=14, churn_events=4)
        baseline = fuzzer.baseline_messages(23)
        outcome = fuzzer.run_schedule(
            CrashSchedule(seed=23, message_index=baseline // 2,
                          victim_rank=5))
        assert outcome.victim is not None
        assert outcome.crash_phase in ("build", "churn", "heal")
        assert outcome.converged, outcome
        assert outcome.residual_stale == 0

    def test_outcome_as_dict_is_json_ready(self):
        fuzzer = CrashScheduleFuzzer(num_objects=10, churn_events=2)
        outcome = fuzzer.run_schedule(
            CrashSchedule(seed=3, message_index=30, victim_rank=1))
        json.dumps(outcome.as_dict())  # must not raise


# ----------------------------------------------------------------------
# replay determinism — the property every failure report relies on
# ----------------------------------------------------------------------
class TestReplayDeterminism:
    def test_same_triple_same_fingerprint(self):
        fuzzer = CrashScheduleFuzzer(num_objects=14, churn_events=6)
        schedule = CrashSchedule(seed=31, message_index=120, victim_rank=9)
        first = fuzzer.run_schedule(schedule)
        second = fuzzer.run_schedule(schedule)
        assert first.fingerprint == second.fingerprint
        assert first == second

    def test_sweep_reproducible_from_master_seed(self):
        fuzzer = CrashScheduleFuzzer(num_objects=10, churn_events=4)
        first = fuzzer.run_sweep(5, 6)
        second = fuzzer.run_sweep(5, 6)
        assert [o.fingerprint for o in first.outcomes] == \
               [o.fingerprint for o in second.outcomes]
        assert first.failures == second.failures

    def test_sweep_converges(self):
        fuzzer = CrashScheduleFuzzer(num_objects=12, churn_events=4)
        report = fuzzer.run_sweep(77, 20)
        assert report.schedules_run == 20
        assert report.converged, [f.schedule.as_triple()
                                  for f in report.failures]
        assert report.crashes_fired > 0


# ----------------------------------------------------------------------
# trace language: multi-crash sequences + message-indexed partitions
# ----------------------------------------------------------------------
class TestFuzzTrace:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            CrashEvent(at_message=0)
        with pytest.raises(ValueError):
            CrashEvent(at_message=5, victim_rank=-1)
        with pytest.raises(ValueError):
            CrashEvent(at_message=5, victim="the-sender")
        with pytest.raises(ValueError):
            PartitionEvent(at_message=0)
        with pytest.raises(ValueError):
            PartitionEvent(at_message=5, fraction=1.0)
        with pytest.raises(ValueError):
            PartitionEvent(at_message=5, duration=0.0)

    def test_trace_round_trips_through_json(self):
        trace = FuzzTrace(seed=7, events=(
            CrashEvent(at_message=10, victim_rank=3),
            PartitionEvent(at_message=40, fraction=0.25, duration=12.5),
            CrashEvent(at_message=90, victim="coordinator")))
        data = json.loads(json.dumps(trace.as_dict()))
        assert FuzzTrace.from_dict(data) == trace
        with pytest.raises(ValueError):
            FuzzTrace.from_dict({"seed": 1, "events": [{"kind": "meteor"}]})

    def test_single_crash_trace_equals_legacy_schedule(self):
        fuzzer = CrashScheduleFuzzer(num_objects=12, churn_events=4)
        schedule = CrashSchedule(seed=19, message_index=90, victim_rank=2)
        legacy = fuzzer.run_schedule(schedule)
        trace = FuzzTrace(seed=19, events=(
            CrashEvent(at_message=90, victim_rank=2),))
        assert trace.as_schedule() == schedule
        modern = fuzzer.run_trace(trace)
        assert modern.fingerprint == legacy.fingerprint
        assert modern.victims == legacy.victims

    def test_multi_crash_sequence_converges(self):
        fuzzer = CrashScheduleFuzzer(num_objects=16, churn_events=4)
        total = fuzzer.baseline_messages(29)
        trace = FuzzTrace(seed=29, events=(
            CrashEvent(at_message=total // 3, victim_rank=1),
            CrashEvent(at_message=2 * total // 3, victim_rank=5)))
        outcome = fuzzer.run_trace(trace)
        assert outcome.error is None
        assert len(outcome.victims) == 2
        assert len(set(outcome.victims)) == 2        # two distinct deaths
        assert outcome.converged, outcome

    def test_partition_window_armed_at_message_index(self):
        fuzzer = CrashScheduleFuzzer(num_objects=14, churn_events=4)
        baseline = fuzzer.run_schedule(CrashSchedule(seed=23,
                                                     message_index=None))
        marks = dict(baseline.phase_marks)
        trace = FuzzTrace(seed=23, events=(
            PartitionEvent(at_message=marks["churn"] + 2, fraction=0.3,
                           duration=100000.0),))
        outcome = fuzzer.run_trace(trace)
        assert outcome.error is None
        assert outcome.partitions_opened == 1
        # The window was far too long to lapse on the clock: the heal
        # phase closed it explicitly, and the overlay still converged.
        assert outcome.partitions_healed == 1
        assert outcome.converged, outcome

    def test_coordinator_crash_during_repair_is_bounded(self):
        """Killing the sender of a heal-phase message mid-repair.

        The victim is whoever was coordinating the armed message's
        conversation (a probe, a scrub, a retarget search).  The run must
        terminate inside its configured bounds with a defined outcome —
        converged, or a populated divergence surface — never a hang.
        """
        fuzzer = CrashScheduleFuzzer(num_objects=14, churn_events=4)
        baseline = fuzzer.run_schedule(CrashSchedule(seed=23,
                                                     message_index=None))
        marks = dict(baseline.phase_marks)
        trace = FuzzTrace(seed=23, events=(
            CrashEvent(at_message=marks["heal"] + 3, victim="coordinator"),))
        outcome = fuzzer.run_trace(trace)
        assert outcome.error is None
        assert outcome.crash_phase == "heal"
        assert len(outcome.victims) == 1
        assert outcome.heal_cycles <= fuzzer.max_heal_cycles
        assert outcome.converged, outcome

    def test_trace_replay_is_deterministic(self):
        fuzzer = CrashScheduleFuzzer(num_objects=14, churn_events=4)
        trace = FuzzTrace(seed=31, events=(
            CrashEvent(at_message=60, victim_rank=4),
            PartitionEvent(at_message=100, fraction=0.4, duration=60.0),
            CrashEvent(at_message=150, victim="coordinator")))
        first = fuzzer.run_trace(trace)
        second = fuzzer.run_trace(trace)
        assert first.fingerprint == second.fingerprint
        assert first == second

    def test_sweep_with_partitions_and_multi_crash(self):
        fuzzer = CrashScheduleFuzzer(num_objects=12, churn_events=4)
        report = fuzzer.run_sweep(11, 4, crashes=2, partition_fraction=0.3,
                                  partition_duration=5000.0)
        assert report.schedules_run == 4
        assert report.partitions_opened == 4
        assert report.partitions_healed == 4     # every window closed
        assert report.crashes_fired >= 4
        assert report.converged, [o.trace.as_dict() for o in report.failures]


# ----------------------------------------------------------------------
# Hypothesis stateful machine
# ----------------------------------------------------------------------
class CrashRecoveryMachine(RuleBasedStateMachine):
    """Interleave joins, leaves and armed crash triggers; always heal clean.

    Any failing interleaving shrinks to a minimal rule sequence; the
    seeded substrate keeps each replay of that sequence deterministic.
    """

    _POSITIONS = st.tuples(
        st.floats(0.01, 0.99, allow_nan=False, allow_infinity=False),
        st.floats(0.01, 0.99, allow_nan=False, allow_infinity=False))

    @initialize(seed=st.integers(0, 2**20))
    def setup(self, seed):
        config = VoroNetConfig(n_max=256, num_long_links=1, seed=seed)
        self.simulator = ProtocolSimulator(config, seed=seed,
                                           faults=FaultPlane(seed=seed + 1))
        self.injector = ProtocolCrashInjector(self.simulator,
                                              rng=RandomSource(seed + 2))
        positions = generate_objects(UniformDistribution(), 12,
                                     RandomSource(seed + 3))
        self.simulator.bulk_join(positions)

    @rule(position=_POSITIONS)
    def join(self, position):
        report = self.simulator.join(position)
        assert report.outcome in ("completed", "timed_out", "rejected")

    @rule(pick=st.integers(0, 10_000))
    def leave(self, pick):
        live = sorted(self.simulator.nodes)
        if len(live) > 6:
            report = self.simulator.leave(live[pick % len(live)])
            assert report.outcome in ("completed", "timed_out")

    @rule(offset=st.integers(0, 30), rank=st.integers(0, 100),
          position=_POSITIONS)
    def crash_during_join(self, offset, rank, position):
        simulator = self.simulator

        def trigger(_message):
            live = sorted(simulator.nodes)
            if len(live) > 6:
                self.injector.crash(live[rank % len(live)])

        simulator.network.at_message(
            simulator.network.messages_sent + 1 + offset, trigger)
        self.simulator.join(position)

    @rule()
    def heal_and_verify(self):
        simulator = self.simulator
        detector = HeartbeatDetector(simulator)
        repairer = RepairProtocol(simulator, detector=detector, max_rounds=8)
        dead = set(self.injector.crashed)

        def all_damage_suspected():
            for object_id in sorted(simulator.nodes):
                node = simulator.nodes[object_id]
                for peer in sorted(node.monitored_peers()):
                    if peer in dead and peer not in node.suspects:
                        return False
            return True

        repair = None
        for _ in range(3):
            rounds = 0
            while rounds < 6:
                detector.run_round()
                rounds += 1
                if (rounds >= detector.miss_threshold
                        and all_damage_suspected()):
                    break
            repair = repairer.repair()
            if repair.converged and not simulator.verify_views():
                break
        assert repair is not None and repair.converged
        assert simulator.verify_views() == []
        assert self.injector.assess_damage().total_stale_entries == 0
        assert simulator.pending_operations() == []
        assert simulator.engine.quiescent

    def teardown(self):
        # Whatever the interleaving left behind must still heal clean.
        if hasattr(self, "simulator"):
            self.heal_and_verify()


CrashRecoveryMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=10, deadline=None)
TestCrashRecovery = CrashRecoveryMachine.TestCase


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_sweep_smoke_exits_zero(self, capsys):
        assert main(["--seed", "5", "--schedules", "4",
                     "--objects", "10", "--churn", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 schedules" in out
        assert "0 failures" in out

    def test_replay_smoke(self, capsys):
        assert main(["--replay", "5:40:2", "--objects", "10",
                     "--churn", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("ok seed=5")

    def test_replay_fault_free_index(self, capsys):
        assert main(["--replay", "5:none:0", "--objects", "10",
                     "--churn", "2"]) == 0
        assert "victim=None" in capsys.readouterr().out

    def test_no_artifact_written_on_success(self, tmp_path, capsys):
        artifact = tmp_path / "failures.json"
        assert main(["--seed", "5", "--schedules", "2", "--objects", "10",
                     "--churn", "2", "--output", str(artifact)]) == 0
        assert not artifact.exists()

    def test_replay_parse_errors(self):
        with pytest.raises(SystemExit):
            main(["--replay", "not-a-triple"])

    def test_replay_trace_file(self, tmp_path, capsys):
        trace = FuzzTrace(seed=5, events=(
            CrashEvent(at_message=40, victim_rank=2),))
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace.as_dict()), encoding="utf-8")
        assert main(["--replay-trace", str(path), "--objects", "10",
                     "--churn", "2"]) == 0
        assert capsys.readouterr().out.startswith("ok seed=5")

    def test_replay_trace_accepts_failure_artifact_shape(self, tmp_path,
                                                         capsys):
        # The --output artifact nests the trace under "trace"; replay
        # must accept that file as-is.
        trace = FuzzTrace(seed=5, events=(
            CrashEvent(at_message=40, victim_rank=2),
            PartitionEvent(at_message=60, fraction=0.3, duration=30.0)))
        artifact = [{"converged": False, "trace": trace.as_dict()}]
        path = tmp_path / "failures.json"
        path.write_text(json.dumps(artifact), encoding="utf-8")
        assert main(["--replay-trace", str(path), "--objects", "10",
                     "--churn", "2"]) == 0
        assert "partitions=1" in capsys.readouterr().out

    def test_sweep_partition_and_multi_crash_flags(self, capsys):
        assert main(["--seed", "5", "--schedules", "2", "--objects", "10",
                     "--churn", "2", "--crashes", "2",
                     "--partition-fraction", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "2 partitions opened" in out
        assert "0 failures" in out

"""Tests of the crash-at-any-message fuzzing harness.

Three layers: unit checks of the schedule/outcome plumbing and the CLI,
replay determinism (the same triple produces byte-identical outcomes —
the property every failure report relies on), and a Hypothesis stateful
machine that interleaves joins, leaves and armed crash triggers against a
live simulator, healing and asserting clean convergence — Hypothesis
shrinks any failing interleaving to a minimal one.
"""

import json

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.core import VoroNetConfig
from repro.simulation.faults import (
    FaultPlane,
    HeartbeatDetector,
    ProtocolCrashInjector,
    RepairProtocol,
)
from repro.simulation.fuzz import (
    CrashSchedule,
    CrashScheduleFuzzer,
    main,
)
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
class TestSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashSchedule(seed=1, message_index=0)
        with pytest.raises(ValueError):
            CrashSchedule(seed=1, message_index=5, victim_rank=-1)
        with pytest.raises(ValueError):
            CrashScheduleFuzzer(num_objects=2)
        with pytest.raises(ValueError):
            CrashScheduleFuzzer().run_sweep(0, 0)

    def test_triple_round_trips(self):
        schedule = CrashSchedule(seed=9, message_index=42, victim_rank=3)
        assert schedule.as_triple() == (9, 42, 3)

    def test_baseline_runs_fault_free(self):
        fuzzer = CrashScheduleFuzzer(num_objects=10, churn_events=4)
        outcome = fuzzer.run_schedule(
            CrashSchedule(seed=17, message_index=None))
        assert outcome.victim is None
        assert outcome.crash_phase is None
        assert outcome.converged
        assert not outcome.failed
        assert outcome.messages > 0
        assert outcome.verify_problems == 0
        assert outcome.pending_operations == ()

    def test_crash_fires_and_converges(self):
        fuzzer = CrashScheduleFuzzer(num_objects=14, churn_events=4)
        baseline = fuzzer.baseline_messages(23)
        outcome = fuzzer.run_schedule(
            CrashSchedule(seed=23, message_index=baseline // 2,
                          victim_rank=5))
        assert outcome.victim is not None
        assert outcome.crash_phase in ("build", "churn", "heal")
        assert outcome.converged, outcome
        assert outcome.residual_stale == 0

    def test_outcome_as_dict_is_json_ready(self):
        fuzzer = CrashScheduleFuzzer(num_objects=10, churn_events=2)
        outcome = fuzzer.run_schedule(
            CrashSchedule(seed=3, message_index=30, victim_rank=1))
        json.dumps(outcome.as_dict())  # must not raise


# ----------------------------------------------------------------------
# replay determinism — the property every failure report relies on
# ----------------------------------------------------------------------
class TestReplayDeterminism:
    def test_same_triple_same_fingerprint(self):
        fuzzer = CrashScheduleFuzzer(num_objects=14, churn_events=6)
        schedule = CrashSchedule(seed=31, message_index=120, victim_rank=9)
        first = fuzzer.run_schedule(schedule)
        second = fuzzer.run_schedule(schedule)
        assert first.fingerprint == second.fingerprint
        assert first == second

    def test_sweep_reproducible_from_master_seed(self):
        fuzzer = CrashScheduleFuzzer(num_objects=10, churn_events=4)
        first = fuzzer.run_sweep(5, 6)
        second = fuzzer.run_sweep(5, 6)
        assert [o.fingerprint for o in first.outcomes] == \
               [o.fingerprint for o in second.outcomes]
        assert first.failures == second.failures

    def test_sweep_converges(self):
        fuzzer = CrashScheduleFuzzer(num_objects=12, churn_events=4)
        report = fuzzer.run_sweep(77, 20)
        assert report.schedules_run == 20
        assert report.converged, [f.schedule.as_triple()
                                  for f in report.failures]
        assert report.crashes_fired > 0


# ----------------------------------------------------------------------
# Hypothesis stateful machine
# ----------------------------------------------------------------------
class CrashRecoveryMachine(RuleBasedStateMachine):
    """Interleave joins, leaves and armed crash triggers; always heal clean.

    Any failing interleaving shrinks to a minimal rule sequence; the
    seeded substrate keeps each replay of that sequence deterministic.
    """

    _POSITIONS = st.tuples(
        st.floats(0.01, 0.99, allow_nan=False, allow_infinity=False),
        st.floats(0.01, 0.99, allow_nan=False, allow_infinity=False))

    @initialize(seed=st.integers(0, 2**20))
    def setup(self, seed):
        config = VoroNetConfig(n_max=256, num_long_links=1, seed=seed)
        self.simulator = ProtocolSimulator(config, seed=seed,
                                           faults=FaultPlane(seed=seed + 1))
        self.injector = ProtocolCrashInjector(self.simulator,
                                              rng=RandomSource(seed + 2))
        positions = generate_objects(UniformDistribution(), 12,
                                     RandomSource(seed + 3))
        self.simulator.bulk_join(positions)

    @rule(position=_POSITIONS)
    def join(self, position):
        report = self.simulator.join(position)
        assert report.outcome in ("completed", "timed_out", "rejected")

    @rule(pick=st.integers(0, 10_000))
    def leave(self, pick):
        live = sorted(self.simulator.nodes)
        if len(live) > 6:
            report = self.simulator.leave(live[pick % len(live)])
            assert report.outcome in ("completed", "timed_out")

    @rule(offset=st.integers(0, 30), rank=st.integers(0, 100),
          position=_POSITIONS)
    def crash_during_join(self, offset, rank, position):
        simulator = self.simulator

        def trigger(_message):
            live = sorted(simulator.nodes)
            if len(live) > 6:
                self.injector.crash(live[rank % len(live)])

        simulator.network.at_message(
            simulator.network.messages_sent + 1 + offset, trigger)
        self.simulator.join(position)

    @rule()
    def heal_and_verify(self):
        simulator = self.simulator
        detector = HeartbeatDetector(simulator)
        repairer = RepairProtocol(simulator, detector=detector, max_rounds=8)
        dead = set(self.injector.crashed)

        def all_damage_suspected():
            for object_id in sorted(simulator.nodes):
                node = simulator.nodes[object_id]
                for peer in sorted(node.monitored_peers()):
                    if peer in dead and peer not in node.suspects:
                        return False
            return True

        repair = None
        for _ in range(3):
            rounds = 0
            while rounds < 6:
                detector.run_round()
                rounds += 1
                if (rounds >= detector.miss_threshold
                        and all_damage_suspected()):
                    break
            repair = repairer.repair()
            if repair.converged and not simulator.verify_views():
                break
        assert repair is not None and repair.converged
        assert simulator.verify_views() == []
        assert self.injector.assess_damage().total_stale_entries == 0
        assert simulator.pending_operations() == []
        assert simulator.engine.quiescent

    def teardown(self):
        # Whatever the interleaving left behind must still heal clean.
        if hasattr(self, "simulator"):
            self.heal_and_verify()


CrashRecoveryMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=10, deadline=None)
TestCrashRecovery = CrashRecoveryMachine.TestCase


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_sweep_smoke_exits_zero(self, capsys):
        assert main(["--seed", "5", "--schedules", "4",
                     "--objects", "10", "--churn", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 schedules" in out
        assert "0 failures" in out

    def test_replay_smoke(self, capsys):
        assert main(["--replay", "5:40:2", "--objects", "10",
                     "--churn", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("ok seed=5")

    def test_replay_fault_free_index(self, capsys):
        assert main(["--replay", "5:none:0", "--objects", "10",
                     "--churn", "2"]) == 0
        assert "victim=None" in capsys.readouterr().out

    def test_no_artifact_written_on_success(self, tmp_path, capsys):
        artifact = tmp_path / "failures.json"
        assert main(["--seed", "5", "--schedules", "2", "--objects", "10",
                     "--churn", "2", "--output", str(artifact)]) == 0
        assert not artifact.exists()

    def test_replay_parse_errors(self):
        with pytest.raises(SystemExit):
            main(["--replay", "not-a-triple"])

"""Unit tests for churn scheduling and crash injection."""

import numpy as np
import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.failures import ChurnScheduler, CrashInjector
from repro.utils.rng import RandomSource


class TestChurnScheduler:
    def test_invalid_rates(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            ChurnScheduler(engine, join=lambda p: None, leave=lambda: None,
                           join_rate=0.0)

    def test_churn_executes_joins_and_leaves(self):
        engine = SimulationEngine()
        overlay = VoroNet(VoroNetConfig(n_max=500, seed=1))
        for p in np.random.default_rng(1).random((20, 2)):
            overlay.insert(tuple(p))

        def leave():
            if len(overlay) > 4:
                overlay.remove(overlay.random_object_id())

        scheduler = ChurnScheduler(
            engine,
            join=lambda p: overlay.insert(p),
            leave=leave,
            join_rate=2.0, leave_rate=1.0,
            rng=RandomSource(2),
        )
        scheduler.start(horizon=30.0)
        engine.run()
        assert scheduler.joins_executed > 0
        assert scheduler.leaves_executed > 0
        assert overlay.check_consistency() == []

    def test_leave_rate_zero_schedules_no_leaves(self):
        engine = SimulationEngine()
        counter = {"joins": 0}
        scheduler = ChurnScheduler(
            engine, join=lambda p: counter.__setitem__("joins", counter["joins"] + 1),
            leave=lambda: None, join_rate=1.0, leave_rate=0.0,
            rng=RandomSource(3),
        )
        scheduler.start(horizon=10.0)
        engine.run()
        assert scheduler.leaves_executed == 0
        assert counter["joins"] == scheduler.joins_executed

    def test_merged_stream_interleaves_joins_and_leaves(self):
        """One merged arrival process: at equal rates the two kinds mix
        throughout the horizon instead of all joins sorting before all
        leaves at equal timestamps (the two-stream failure mode)."""
        engine = SimulationEngine()
        order = []
        scheduler = ChurnScheduler(
            engine,
            join=lambda p: order.append("join"),
            leave=lambda: order.append("leave"),
            join_rate=3.0, leave_rate=3.0,
            rng=RandomSource(11),
        )
        scheduled = scheduler.start(horizon=40.0)
        engine.run()
        assert scheduled == len(order)
        first_leave = order.index("leave")
        last_join = len(order) - 1 - order[::-1].index("join")
        assert first_leave < last_join  # genuinely interleaved

    def test_start_is_relative_to_a_warm_clock(self):
        engine = SimulationEngine()
        engine.schedule(25.0, lambda: None)
        engine.run()
        assert engine.now == 25.0
        fired = []
        scheduler = ChurnScheduler(
            engine, join=lambda p: fired.append(engine.now),
            leave=lambda: fired.append(engine.now),
            join_rate=2.0, leave_rate=1.0, rng=RandomSource(4),
        )
        scheduler.start(horizon=10.0)
        engine.run()
        assert fired
        assert all(25.0 < time <= 35.0 for time in fired)

    def test_stop_cancels_pending_events(self):
        engine = SimulationEngine()
        executed = {"count": 0}
        scheduler = ChurnScheduler(
            engine,
            join=lambda p: executed.__setitem__("count", executed["count"] + 1),
            leave=lambda: executed.__setitem__("count", executed["count"] + 1),
            join_rate=2.0, leave_rate=1.0, rng=RandomSource(5),
        )
        scheduled = scheduler.start(horizon=30.0)
        engine.run_until(10.0)
        ran = executed["count"]
        cancelled = scheduler.stop()
        assert cancelled == scheduled - ran
        engine.run()
        assert executed["count"] == ran  # nothing stale drained afterwards
        assert engine.quiescent


class TestCrashInjector:
    @pytest.fixture
    def overlay(self, numpy_rng):
        overlay = VoroNet(VoroNetConfig(n_max=300, seed=9))
        for p in numpy_rng.random((120, 2)):
            overlay.insert(tuple(p))
        return overlay

    def test_crash_removes_without_protocol(self, overlay):
        injector = CrashInjector(overlay, rng=RandomSource(1))
        before = len(overlay)
        injector.crash_random(10)
        assert len(overlay) == before - 10

    def test_crashes_leave_dangling_state(self, overlay):
        injector = CrashInjector(overlay, rng=RandomSource(1))
        injector.crash_random(30)
        report = injector.assess_damage()
        assert report.crashed == 30
        assert report.total_stale_entries > 0
        assert report.affected_objects > 0

    def test_graceful_leaves_cause_no_damage(self, overlay, numpy_rng):
        """Contrast: the same number of graceful departures leaves no stale state."""
        victims = numpy_rng.choice(overlay.object_ids(), size=30, replace=False)
        for victim in victims:
            overlay.remove(int(victim))
        injector = CrashInjector(overlay)
        report = injector.assess_damage()
        assert report.total_stale_entries == 0

    def test_crashes_leave_dangling_back_links(self, overlay):
        """The reverse pointers of crashed sources are damage too —
        invisible to the per-node views but carried by survivors."""
        injector = CrashInjector(overlay, rng=RandomSource(1))
        injector.crash_random(30)
        report = injector.assess_damage()
        assert report.dangling_back_links > 0
        assert report.total_stale_entries >= (
            report.dangling_long_links + report.stale_close_neighbors
            + report.dangling_back_links)
        crashed = set(injector._crashed)  # noqa: SLF001 - test introspection
        counted = sum(
            1 for oid in overlay.object_ids()
            for bl in overlay.node(oid).back_links if bl.source in crashed)
        assert counted == report.dangling_back_links

    def test_repair_fixes_dangling_links(self, overlay):
        injector = CrashInjector(overlay, rng=RandomSource(1))
        injector.crash_random(25)
        fixed = injector.repair()
        assert fixed > 0
        report = injector.assess_damage()
        assert report.dangling_long_links == 0
        assert report.stale_close_neighbors == 0
        assert report.dangling_back_links == 0
        crashed = set(injector._crashed)  # noqa: SLF001 - test introspection
        for oid in overlay.object_ids():
            assert not {bl.source for bl in overlay.node(oid).back_links} & crashed

    def test_routing_still_works_after_repair(self, overlay, numpy_rng):
        injector = CrashInjector(overlay, rng=RandomSource(1))
        injector.crash_random(25)
        injector.repair()
        ids = overlay.object_ids()
        for _ in range(10):
            a, b = numpy_rng.choice(ids, size=2, replace=False)
            assert overlay.route(int(a), int(b)).success

    def test_crash_drops_locate_grid_entries(self, overlay, numpy_rng):
        """Regression: the grid is substrate state — crashed ids must leave
        it, or lookups enter the overlay at a dead peer and explode.

        Greedy descent may still hit a survivor's dangling view entry
        before :meth:`repair` runs (the documented crash damage); what the
        grid guarantees is a *live entry point*, and full lookups once the
        anti-entropy pass has scrubbed the views."""
        injector = CrashInjector(overlay, rng=RandomSource(1))
        crashed = set(injector.crash_random(15))
        assert all(object_id not in overlay.locate_index
                   for object_id in crashed)
        assert len(overlay.locate_index) == len(overlay)
        points = numpy_rng.random((50, 2))
        for point in points:
            assert overlay.query_entry_point(tuple(point)) not in crashed
        injector.repair()
        for point in points:
            result = overlay.lookup(tuple(point))
            assert result.owner not in crashed

    def test_crash_invalidates_warmed_routing_tables(self, overlay, numpy_rng):
        """Regression: crashes bypass VoroNet.remove, but must still bump
        the topology epoch — otherwise warmed routing tables keep serving
        crashed ids as forwarding candidates."""
        for object_id in overlay.object_ids():
            overlay.routing_table(object_id)  # warm every table
        injector = CrashInjector(overlay, rng=RandomSource(1))
        crashed = set(injector.crash_random(10))
        injector.repair()
        ids = overlay.object_ids()
        for _ in range(50):
            a, b = numpy_rng.choice(ids, size=2, replace=False)
            result = overlay.route(int(a), int(b))
            assert result.success
            assert result.owner not in crashed

"""Tests of the crash-at-any-message protocol hardening.

Covers the engine-level ``Watchdog`` (progress-aware timeout events that
cancel cleanly and replay identically), ``Network.at_message`` crash
triggers, the ``TimeoutPolicy`` retry contracts on joins, close
discovery and long-link search, idempotency of duplicate retries, and the
satellite fix: an operation whose only state-holder crashes surfaces as a
``timed_out`` outcome on ``JoinReport``/``LeaveReport`` instead of
wedging or silently "completing".
"""

import pytest

from repro.core import VoroNetConfig
from repro.simulation.engine import SimulationEngine, Watchdog
from repro.simulation.faults import FaultPlane, ProtocolCrashInjector, RepairProtocol
from repro.simulation.protocol import ProtocolSimulator, TimeoutPolicy
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


def build_simulator(count=30, seed=11, num_long_links=1,
                    timeouts=None):
    config = VoroNetConfig(n_max=4 * count + 64,
                           num_long_links=num_long_links, seed=seed)
    simulator = ProtocolSimulator(config, seed=seed,
                                  faults=FaultPlane(seed=seed + 1),
                                  timeouts=timeouts)
    positions = generate_objects(UniformDistribution(), count,
                                 RandomSource(seed + 3))
    simulator.bulk_join(positions)
    return simulator


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_fires_after_timeout_without_progress(self):
        engine = SimulationEngine()
        fired = []
        dog = Watchdog(engine, 5.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [5.0]
        assert dog.fired == 1
        assert not dog.active

    def test_poke_defers_expiry_to_last_progress_plus_timeout(self):
        engine = SimulationEngine()
        fired = []
        dog = Watchdog(engine, 5.0, lambda: fired.append(engine.now))
        engine.schedule(3.0, dog.poke)
        engine.schedule(4.0, dog.poke)
        engine.run()
        # Last progress at t=4, so the quiet window expires at t=9.
        assert fired == [9.0]

    def test_cancel_suppresses_expiry_and_keeps_quiescence_exact(self):
        engine = SimulationEngine()
        fired = []
        dog = Watchdog(engine, 5.0, lambda: fired.append(True))
        assert engine.runnable_events == 1
        dog.cancel()
        assert engine.runnable_events == 0
        assert engine.quiescent
        engine.run()
        assert fired == []
        assert not dog.active
        dog.cancel()  # idempotent

    def test_rearm_restarts_with_new_timeout(self):
        engine = SimulationEngine()
        fired = []
        dog = Watchdog(engine, 5.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [5.0]
        dog.rearm(2.0)
        assert dog.active
        engine.run()
        assert fired == [5.0, 7.0]
        assert dog.timeout == 2.0

    def test_validation(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            Watchdog(engine, 0.0, lambda: None)
        dog = Watchdog(engine, 1.0, lambda: None)
        with pytest.raises(ValueError):
            dog.rearm(-1.0)

    def test_fault_free_schedule_identical_with_and_without_cancel(self):
        """Arming and cancelling a watchdog must not perturb the clock."""
        plain = SimulationEngine()
        plain.schedule(1.0, lambda: None)
        plain.run()
        guarded = SimulationEngine()
        guarded.schedule(1.0, lambda: None)
        dog = Watchdog(guarded, 9.0, lambda: (_ for _ in ()).throw(
            AssertionError("must never fire")))
        dog.cancel()
        guarded.run()
        assert guarded.now == plain.now
        assert guarded.quiescent


# ----------------------------------------------------------------------
# Network.at_message
# ----------------------------------------------------------------------
class TestAtMessage:
    def test_index_validation(self):
        simulator = ProtocolSimulator(VoroNetConfig(n_max=32, seed=1), seed=1)
        with pytest.raises(ValueError):
            simulator.network.at_message(0, lambda message: None)

    def test_trigger_fires_exactly_once_at_the_indexed_message(self):
        simulator = build_simulator(count=10, seed=5)
        seen = []
        index = simulator.network.messages_sent + 3
        simulator.network.at_message(index, lambda message: seen.append(
            (simulator.network.messages_sent, message.kind)))
        simulator.join((0.31, 0.62))
        simulator.join((0.62, 0.31))
        assert seen == [(index, seen[0][1])]

    def test_multiple_triggers_on_one_index_all_fire(self):
        simulator = build_simulator(count=10, seed=5)
        seen = []
        index = simulator.network.messages_sent + 1
        simulator.network.at_message(index, lambda message: seen.append("a"))
        simulator.network.at_message(index, lambda message: seen.append("b"))
        simulator.join((0.41, 0.59))
        assert seen == ["a", "b"]


# ----------------------------------------------------------------------
# TimeoutPolicy
# ----------------------------------------------------------------------
class TestTimeoutPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeoutPolicy(join_timeout=0.0)
        with pytest.raises(ValueError):
            TimeoutPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            TimeoutPolicy(backoff=0.5)

    def test_defaults_enabled(self):
        policy = TimeoutPolicy()
        assert policy.enabled
        assert policy.max_retries >= 1


# ----------------------------------------------------------------------
# operation outcomes under mid-conversation crashes
# ----------------------------------------------------------------------
class TestOperationOutcomes:
    def test_fault_free_join_and_leave_complete(self):
        simulator = build_simulator(count=12, seed=9)
        join = simulator.join((0.123, 0.456))
        assert join.outcome == "completed"
        leave = simulator.leave(join.object_id)
        assert leave.outcome == "completed"
        assert simulator.pending_operations() == []
        assert simulator.metrics.counter("operation_timeouts") == 0

    def test_join_times_out_when_every_starter_crashes_mid_walk(self):
        """Satellite fix: the starter-state holders die, the caller hears.

        The joiner's ADD_OBJECT is forced onto a real routing walk (the
        introducer is across the square from the target), and the instant
        its first hop is counted every node but the joiner crashes — the
        only copies of the pending join's starter state are gone, and no
        retry can ever carve the region.  The watchdog must exhaust its
        retries and surface ``timed_out`` — tearing the never-carved
        joiner back down — rather than leaking the operation.
        """
        config = VoroNetConfig(n_max=32, seed=2)
        simulator = ProtocolSimulator(config, seed=2,
                                      faults=FaultPlane(seed=3))
        far = simulator.join((0.1, 0.1))
        simulator.join((0.85, 0.85))
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(4))
        joiner_id = simulator._next_id

        def kill_all_survivors(_message):
            for object_id in sorted(simulator.nodes):
                if object_id != joiner_id:
                    injector.crash(object_id)

        simulator.network.at_message(
            simulator.network.messages_sent + 1, kill_all_survivors)
        report = simulator.join((0.8, 0.8), introducer=far.object_id)
        assert report.object_id == joiner_id
        assert report.outcome == "timed_out"
        assert report.object_id not in simulator.nodes
        assert simulator.pending_operations() == []
        assert simulator.metrics.counter("operation_timeouts") >= 1
        assert simulator.metrics.counter("operation_failures") >= 1

    def test_join_completes_by_self_carve_when_introducer_dies_after_carve(self):
        """A joiner whose region was already carved self-heals on retry.

        With a single introducer the ADD_OBJECT is a local hand-off, so
        the first *counted* message is the CREATE_OBJECT answer; crashing
        the introducer there loses the snapshot but not the carve — the
        retry rediscovers the joiner's own region through the locate grid
        and completes the bootstrap instead of timing out.
        """
        config = VoroNetConfig(n_max=32, seed=2)
        simulator = ProtocolSimulator(config, seed=2,
                                      faults=FaultPlane(seed=3))
        first = simulator.join((0.25, 0.25))
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(4))
        simulator.network.at_message(
            simulator.network.messages_sent + 1,
            lambda message: injector.crash(first.object_id))
        report = simulator.join((0.75, 0.75))
        assert report.outcome == "completed"
        assert report.object_id in simulator.nodes
        assert simulator.pending_operations() == []
        assert simulator.metrics.counter("operation_timeouts") >= 1
        assert simulator.verify_views() == []

    def test_join_retries_through_crashed_carrier_and_completes(self):
        """With survivors left, a crashed walk retries to completion."""
        simulator = build_simulator(count=20, seed=13)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(14))
        victims = sorted(simulator.nodes)

        def crash_one(_message):
            live = sorted(simulator.nodes)
            if len(live) > 4:
                injector.crash(victims[0] if victims[0] in simulator.nodes
                               else live[0])

        simulator.network.at_message(
            simulator.network.messages_sent + 1, crash_one)
        report = simulator.join((0.515, 0.485))
        assert report.outcome in ("completed", "timed_out")
        assert simulator.pending_operations() == []
        if report.outcome == "completed":
            assert report.object_id in simulator.nodes

    def test_leave_reports_timed_out_when_leaver_crashes_mid_handover(self):
        simulator = build_simulator(count=15, seed=21)
        victim = sorted(simulator.nodes)[3]
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(22))
        simulator.network.at_message(
            simulator.network.messages_sent + 1,
            lambda message: injector.crash(victim))
        report = simulator.leave(victim)
        assert report.outcome == "timed_out"
        assert victim not in simulator.nodes
        # The survivors must be repairable back to clean views.
        repairer = RepairProtocol(simulator)
        repairer.detector.run_rounds(3)
        repair = repairer.repair()
        assert repair.converged
        assert simulator.verify_views() == []

    def test_crash_guard_handles_victim_not_in_kernel(self):
        """Crashing a mid-join attachment (no kernel vertex) must not raise."""
        config = VoroNetConfig(n_max=32, seed=6)
        simulator = ProtocolSimulator(config, seed=6,
                                      faults=FaultPlane(seed=7))
        simulator.join((0.3, 0.3))
        second = simulator.join((0.7, 0.7))
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(8))
        # Attach a node by hand without carving it (the state a joiner is
        # in while its ADD_OBJECT still walks), then crash it.
        object_id = simulator._next_id
        simulator._next_id += 1
        simulator._attach_node(object_id, (0.9, 0.1))
        injector.crash(object_id)
        assert object_id not in simulator.nodes
        assert second.object_id in simulator.nodes

    def test_disabled_policy_arms_no_watchdogs(self):
        simulator = build_simulator(
            count=12, seed=31, timeouts=TimeoutPolicy(enabled=False))
        report = simulator.join((0.111, 0.222))
        assert report.outcome == "completed"
        assert simulator.pending_operations() == []
        assert simulator.metrics.counter("operation_timeouts") == 0


# ----------------------------------------------------------------------
# idempotency of duplicate retries
# ----------------------------------------------------------------------
class TestIdempotency:
    def test_duplicate_carve_only_resends_snapshot(self):
        simulator = build_simulator(count=12, seed=41)
        report = simulator.join((0.345, 0.678))
        node = simulator.nodes[report.object_id]
        version_before = simulator.kernel.version
        view_before = dict(node.voronoi)
        owner_id = sorted(oid for oid in simulator.nodes
                          if oid != report.object_id)[0]
        simulator.complete_insertion(owner=simulator.nodes[owner_id],
                                     new_id=report.object_id,
                                     position=node.position, routing_hops=0)
        simulator.engine.run_until_quiescent()
        assert simulator.metrics.counter("duplicate_carves") == 1
        assert simulator.kernel.version == version_before
        assert dict(simulator.nodes[report.object_id].voronoi) == view_before

    def test_duplicate_create_object_does_not_restart_phases(self):
        simulator = build_simulator(count=12, seed=43)
        report = simulator.join((0.432, 0.567))
        node = simulator.nodes[report.object_id]
        links_before = len(node.long_links)
        sender = simulator.nodes[sorted(simulator.nodes)[0]]
        view = {nid: simulator.kernel.point(nid)
                for nid in simulator.kernel.neighbors(report.object_id)}
        simulator.send(sender, report.object_id, "CREATE_OBJECT",
                       {"voronoi": view, "version": simulator.kernel.version})
        simulator.engine.run_until_quiescent()
        assert len(simulator.nodes[report.object_id].long_links) == links_before
        assert simulator.pending_operations() == []
        assert simulator.verify_views() == []

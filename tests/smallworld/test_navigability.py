"""Unit tests for navigability measurements."""

from repro.smallworld.navigability import (
    NavigabilityPoint,
    measure_grid_routing,
    sweep_exponents,
)
from repro.utils.rng import RandomSource


class TestMeasurement:
    def test_single_measurement_fields(self):
        point = measure_grid_routing(10, exponent=2.0, num_pairs=40,
                                     rng=RandomSource(1))
        assert isinstance(point, NavigabilityPoint)
        assert point.n == 10
        assert point.exponent == 2.0
        assert point.num_pairs == 40
        assert point.mean_hops > 0

    def test_sweep_returns_one_point_per_exponent(self):
        points = sweep_exponents(10, [0.0, 2.0, 4.0], num_pairs=30,
                                 rng=RandomSource(2))
        assert [p.exponent for p in points] == [0.0, 2.0, 4.0]

    def test_exponent_two_beats_large_exponents(self):
        """Kleinberg's result: s=2 is better than strongly local links (s=4+),
        which degenerate towards lattice-only routing."""
        points = sweep_exponents(24, [2.0, 6.0], num_pairs=150,
                                 rng=RandomSource(3))
        by_exponent = {p.exponent: p.mean_hops for p in points}
        assert by_exponent[2.0] < by_exponent[6.0]

    def test_larger_grids_have_longer_routes(self):
        small = measure_grid_routing(8, num_pairs=80, rng=RandomSource(4))
        large = measure_grid_routing(24, num_pairs=80, rng=RandomSource(4))
        assert large.mean_hops > small.mean_hops

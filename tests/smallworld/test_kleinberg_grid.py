"""Unit tests for the Kleinberg grid model."""

import pytest

from repro.smallworld.kleinberg_grid import KleinbergGrid
from repro.utils.rng import RandomSource


@pytest.fixture
def grid():
    return KleinbergGrid(12, exponent=2.0, rng=RandomSource(5))


class TestConstruction:
    def test_size(self, grid):
        assert grid.size == 144

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KleinbergGrid(1)
        with pytest.raises(ValueError):
            KleinbergGrid(8, long_links_per_node=-1)

    def test_every_node_has_long_links(self, grid):
        for row in range(grid.n):
            for col in range(grid.n):
                contacts = grid.long_range_contacts((row, col))
                assert len(contacts) == 1
                assert contacts[0] != (row, col)

    def test_multiple_long_links(self):
        grid = KleinbergGrid(8, long_links_per_node=3, rng=RandomSource(1))
        assert len(grid.long_range_contacts((4, 4))) == 3

    def test_zero_long_links(self):
        grid = KleinbergGrid(8, long_links_per_node=0, rng=RandomSource(1))
        assert grid.long_range_contacts((4, 4)) == []


class TestLattice:
    def test_corner_has_two_lattice_neighbors(self, grid):
        assert len(grid.lattice_neighbors((0, 0))) == 2

    def test_edge_has_three(self, grid):
        assert len(grid.lattice_neighbors((0, 5))) == 3

    def test_interior_has_four(self, grid):
        assert len(grid.lattice_neighbors((5, 5))) == 4

    def test_lattice_distance(self):
        assert KleinbergGrid.lattice_distance((0, 0), (3, 4)) == 7

    def test_contains(self, grid):
        assert grid.contains((0, 0))
        assert not grid.contains((12, 0))
        assert not grid.contains((-1, 3))


class TestRouting:
    def test_route_to_self_is_zero_hops(self, grid):
        result = grid.greedy_route((3, 3), (3, 3))
        assert result.hops == 0 and result.success

    def test_route_always_succeeds(self, grid):
        rng = RandomSource(9)
        for _ in range(60):
            source = (rng.integer(0, grid.n), rng.integer(0, grid.n))
            target = (rng.integer(0, grid.n), rng.integer(0, grid.n))
            result = grid.greedy_route(source, target)
            assert result.success

    def test_route_never_longer_than_lattice_distance(self, grid):
        rng = RandomSource(10)
        for _ in range(60):
            source = (rng.integer(0, grid.n), rng.integer(0, grid.n))
            target = (rng.integer(0, grid.n), rng.integer(0, grid.n))
            result = grid.greedy_route(source, target)
            assert result.hops <= KleinbergGrid.lattice_distance(source, target)

    def test_route_path_recording(self, grid):
        result = grid.greedy_route((0, 0), (11, 11), record_path=True)
        assert result.path[0] == (0, 0)
        assert result.path[-1] == (11, 11)
        assert len(result.path) == result.hops + 1

    def test_route_rejects_outside_nodes(self, grid):
        with pytest.raises(ValueError):
            grid.greedy_route((0, 0), (50, 50))

    def test_mean_route_length_positive(self, grid):
        assert grid.mean_route_length(40, RandomSource(2)) > 0

    def test_long_links_reduce_mean_route_length(self):
        """The small-world effect: with s=2 long links, routes are much shorter
        than the lattice-only baseline on average."""
        rng = RandomSource(4)
        with_links = KleinbergGrid(20, exponent=2.0, long_links_per_node=1,
                                   rng=RandomSource(4))
        without_links = KleinbergGrid(20, exponent=2.0, long_links_per_node=0,
                                      rng=RandomSource(4))
        assert with_links.mean_route_length(120, rng) < \
            without_links.mean_route_length(120, rng)

"""Unit tests for small-world link-length distributions."""

import math

import numpy as np
import pytest

from repro.smallworld.link_distribution import (
    grid_harmonic_weights,
    radial_offset_pdf,
    sample_grid_long_range_contact,
    sample_radial_offset,
)
from repro.utils.rng import RandomSource


class TestGridWeights:
    def test_self_weight_is_zero(self):
        weights = grid_harmonic_weights(8, (3, 3), exponent=2.0)
        assert weights[3, 3] == 0.0

    def test_weights_decay_with_distance(self):
        weights = grid_harmonic_weights(16, (0, 0), exponent=2.0)
        assert weights[0, 1] > weights[0, 5] > weights[0, 15]

    def test_exponent_zero_is_uniform(self):
        weights = grid_harmonic_weights(8, (4, 4), exponent=0.0)
        nonzero = weights[weights > 0]
        assert np.allclose(nonzero, nonzero[0])

    def test_weight_value_matches_formula(self):
        weights = grid_harmonic_weights(8, (2, 2), exponent=2.0)
        assert weights[2, 5] == pytest.approx(3 ** -2.0)
        assert weights[5, 6] == pytest.approx(7 ** -2.0)


class TestGridSampling:
    def test_contact_is_valid_grid_node(self):
        rng = RandomSource(1)
        for _ in range(50):
            contact = sample_grid_long_range_contact(10, (5, 5), 2.0, rng)
            assert 0 <= contact[0] < 10 and 0 <= contact[1] < 10
            assert contact != (5, 5)

    def test_near_contacts_more_likely(self):
        rng = RandomSource(2)
        near, far = 0, 0
        for _ in range(800):
            contact = sample_grid_long_range_contact(20, (10, 10), 2.0, rng)
            d = abs(contact[0] - 10) + abs(contact[1] - 10)
            if d <= 3:
                near += 1
            elif d >= 10:
                far += 1
        assert near > far

    def test_tiny_grid_raises_when_no_candidate(self):
        rng = RandomSource(3)
        with pytest.raises(ValueError):
            sample_grid_long_range_contact(1, (0, 0), 2.0, rng)


class TestRadialOffset:
    def test_offset_length_within_support(self):
        rng = RandomSource(4)
        for _ in range(300):
            dx, dy = sample_radial_offset(0.01, 1.0, rng)
            assert 0.01 - 1e-12 <= math.hypot(dx, dy) <= 1.0 + 1e-12

    def test_invalid_bounds_raise(self):
        rng = RandomSource(5)
        with pytest.raises(ValueError):
            sample_radial_offset(0.0, 1.0, rng)
        with pytest.raises(ValueError):
            sample_radial_offset(0.5, 0.4, rng)

    def test_pdf_zero_outside_support(self):
        assert radial_offset_pdf(0.001, 0.01, 1.0) == 0.0
        assert radial_offset_pdf(1.5, 0.01, 1.0) == 0.0

    def test_pdf_integrates_to_one_over_plane(self):
        # Integrate the radial density over the annulus: ∫ pdf(r) 2πr dr = 1.
        d_min, d_max = 0.01, 1.0
        rs = np.linspace(d_min, d_max, 20000)
        integrand = [radial_offset_pdf(r, d_min, d_max) * 2 * math.pi * r for r in rs]
        assert np.trapezoid(integrand, rs) == pytest.approx(1.0, rel=1e-3)

"""Load imbalance summaries and windowed throughput snapshots."""

import pytest

from repro.serving.observability import LoadTracker, WindowTracker
from repro.simulation.metrics import MetricsRegistry


class TestLoadTracker:
    def test_even_load_gini_zero(self):
        tracker = LoadTracker(population=10)
        for node in range(10):
            tracker.record(node, 5)
        assert tracker.gini() == pytest.approx(0.0)
        assert tracker.max_mean() == pytest.approx(1.0)

    def test_one_hot_load_gini_extreme(self):
        tracker = LoadTracker(population=20)
        tracker.record(3, 100)
        # All mass on one of n nodes: Gini = (n-1)/n.
        assert tracker.gini() == pytest.approx(19 / 20)
        assert tracker.max_mean() == pytest.approx(20.0)

    def test_population_zeros_count(self):
        # Same observed counts, very different imbalance stories.
        small = LoadTracker(population=4)
        big = LoadTracker(population=400)
        for tracker in (small, big):
            for node in range(4):
                tracker.record(node, 10)
        assert small.gini() == pytest.approx(0.0)
        assert big.gini() > 0.9

    def test_record_path(self):
        tracker = LoadTracker(population=5)
        tracker.record_path([0, 1, 2])
        tracker.record_path([1, 2, 3])
        assert tracker.counts == {0: 1, 1: 2, 2: 2, 3: 1}
        assert tracker.total == 6

    def test_empty_tracker(self):
        tracker = LoadTracker(population=10)
        assert tracker.gini() == 0.0
        assert tracker.max_mean() == 0.0
        summary = tracker.summary()
        assert summary["total"] == 0.0
        assert summary["nodes_hit"] == 0.0

    def test_summary_fields(self):
        tracker = LoadTracker(population=4)
        tracker.record(0, 6)
        tracker.record(1, 2)
        summary = tracker.summary()
        assert summary["total"] == 8.0
        assert summary["nodes_hit"] == 2.0
        assert summary["max"] == 6.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["max_mean"] == pytest.approx(3.0)


class TestWindowTracker:
    def test_windows_flush_on_boundary(self):
        tracker = WindowTracker(window=10.0)
        tracker.observe(1.0, hops=4, latency=4.0)
        tracker.observe(5.0, hops=6, latency=6.0)
        tracker.observe(12.0, hops=2, latency=2.0)
        rows = tracker.finish()
        assert len(rows) == 2
        assert rows[0]["queries"] == 2.0
        assert rows[0]["qps"] == pytest.approx(0.2)
        assert rows[0]["mean_hops"] == pytest.approx(5.0)
        assert rows[1]["queries"] == 1.0

    def test_empty_windows_emit_zero_rows(self):
        tracker = WindowTracker(window=5.0)
        tracker.observe(0.0, hops=1, latency=1.0)
        tracker.observe(22.0, hops=1, latency=1.0)
        rows = tracker.finish()
        assert len(rows) == 5
        assert [row["queries"] for row in rows[1:4]] == [0.0, 0.0, 0.0]
        assert rows[1]["qps"] == 0.0

    def test_first_window_aligned(self):
        tracker = WindowTracker(window=10.0)
        tracker.observe(27.0, hops=3, latency=3.0)
        rows = tracker.finish()
        assert rows[0]["start"] == 20.0
        assert rows[0]["end"] == 30.0

    def test_time_must_not_go_backwards(self):
        tracker = WindowTracker(window=10.0)
        tracker.observe(15.0, hops=1, latency=1.0)
        with pytest.raises(ValueError):
            tracker.observe(3.0, hops=1, latency=1.0)

    def test_metrics_export(self):
        registry = MetricsRegistry()
        tracker = WindowTracker(window=10.0, metrics=registry, prefix="serving.x")
        for time in (1.0, 2.0, 11.0, 25.0):
            tracker.observe(time, hops=5, latency=5.0)
        tracker.finish()
        summary = registry.histogram_summary("serving.x.window_qps")
        assert summary["count"] == 3
        assert registry.histogram_summary(
            "serving.x.window_mean_hops")["mean"] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowTracker(window=0.0)

"""Shoot-out harness and the oracle-vs-protocol twin-parity guarantee."""

import pytest

from repro.serving.harness import (build_adapters, make_flash_sampler,
                                   make_sampler, run_protocol_serving,
                                   run_shootout, twin_parity)
from repro.workloads.samplers import (FlashCrowdTargets, HotspotTargets,
                                      UniformTargets, ZipfTargets)


class TestTwinParity:
    """Acceptance criterion: oracle-mode and protocol-mode serving produce
    identical hop counts on the same seed and workload at small scale."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_hop_parity_under_contention(self, seed):
        result = twin_parity(120, 240, seed=seed, concurrency=0)
        assert result["parity"]
        assert result["hop_mismatches"] == 0
        assert result["oracle_total_hops"] == result["protocol_total_hops"]

    def test_hop_parity_closed_loop(self):
        result = twin_parity(100, 200, seed=3, concurrency=6)
        assert result["parity"]
        assert result["hop_mismatches"] == 0


class TestSamplerFactory:
    def test_known_workloads(self):
        positions, _adapters = build_adapters(64, seed=1, systems=("chord",))
        assert isinstance(make_sampler("uniform", 64, positions),
                          UniformTargets)
        assert isinstance(make_sampler("zipf", 64, positions), ZipfTargets)
        assert isinstance(make_sampler("hotspot", 64, positions),
                          HotspotTargets)

    def test_flash_needs_dedicated_factory(self):
        positions, _adapters = build_adapters(64, seed=1, systems=("chord",))
        with pytest.raises(ValueError, match="make_flash_sampler"):
            make_sampler("flash", 64, positions)
        flash = make_flash_sampler(64, positions, 300, seed=2)
        assert isinstance(flash, FlashCrowdTargets)
        assert len(flash.phases) == 3

    def test_unknown_workload_rejected(self):
        positions, _adapters = build_adapters(64, seed=1, systems=("chord",))
        with pytest.raises(ValueError):
            make_sampler("bogus", 64, positions)


class TestShootout:
    @pytest.fixture(scope="class")
    def record(self):
        return run_shootout(144, 600, seed=4, workloads=("uniform", "zipf"),
                            concurrency=6)

    def test_record_structure(self, record):
        assert record["population"] == 144
        assert record["queries_per_workload"] == 600
        assert set(record["systems"]) == {"voronet", "kleinberg", "chord"}
        for system, by_workload in record["systems"].items():
            assert set(by_workload) == {"uniform", "zipf"}, system
            for report in by_workload.values():
                assert report["queries"] == 600
                assert report["success_rate"] == 1.0
                assert report["hops"]["p50"] <= report["hops"]["p99"]
                assert report["throughput_qps"] > 0
                assert report["load"]["gini"] >= 0

    def test_skew_raises_imbalance(self, record):
        for system, by_workload in record["systems"].items():
            assert (by_workload["zipf"]["load"]["max_mean"]
                    > by_workload["uniform"]["load"]["max_mean"]), system

    def test_deterministic_without_clock(self, record):
        again = run_shootout(144, 600, seed=4, workloads=("uniform", "zipf"),
                             concurrency=6)
        assert again == record

    def test_wall_clock_section_optional(self):
        ticks = iter(range(1000))
        record = run_shootout(64, 100, seed=1, workloads=("uniform",),
                              systems=("chord",),
                              clock=lambda: float(next(ticks)))
        report = record["systems"]["chord"]["uniform"]
        assert report["wall_seconds"] > 0
        assert report["wall_qps"] > 0


class TestProtocolServing:
    def test_protocol_record(self):
        report = run_protocol_serving(90, 180, seed=6, concurrency=5)
        assert report["system"] == "voronet-protocol"
        assert report["mode"] == "closed-protocol"
        assert report["queries"] == 180
        assert report["success_rate"] == 1.0
        assert report["concurrency"] == 5
        # Answer delivery adds at least one unit beyond the query hops.
        assert report["latency"]["p50"] > report["hops"]["p50"]

"""Streaming percentile estimator: exact small, bounded error large."""

import numpy as np
import pytest

from repro.serving.estimators import StreamingPercentiles


class TestExactRegime:
    """Below the buffer threshold answers must equal numpy.percentile."""

    @pytest.mark.parametrize("size", [1, 2, 7, 100, 511])
    def test_matches_numpy_exactly(self, size):
        rng = np.random.default_rng(31)
        data = rng.lognormal(0.5, 1.0, size)
        estimator = StreamingPercentiles((0.5, 0.9, 0.99), buffer_size=512)
        estimator.observe_many(data)
        assert estimator.exact
        for q in (0.01, 0.25, 0.5, 0.9, 0.99):
            assert estimator.quantile(q) == pytest.approx(
                np.percentile(data, 100 * q), abs=0.0), q

    def test_any_quantile_queryable_while_exact(self):
        estimator = StreamingPercentiles((0.5,), buffer_size=64)
        estimator.observe_many(range(10))
        assert estimator.quantile(0.37) == pytest.approx(
            np.percentile(np.arange(10), 37))

    def test_summary_keys(self):
        estimator = StreamingPercentiles((0.5, 0.9, 0.99), buffer_size=64)
        estimator.observe_many([1.0, 2.0, 3.0])
        summary = estimator.summary()
        assert set(summary) == {"count", "p50", "p90", "p99"}
        assert summary["count"] == 3.0


class TestP2Regime:
    """Above the threshold: bounded relative error, O(1) memory."""

    def test_promotion_happens_at_threshold(self):
        estimator = StreamingPercentiles((0.5,), buffer_size=32)
        estimator.observe_many(range(31))
        assert estimator.exact
        estimator.observe(31.0)
        assert not estimator.exact
        assert estimator.count == 32

    @pytest.mark.parametrize("dist,params", [
        ("lognormal", (1.0, 0.8)),
        ("exponential", (3.0,)),
        ("normal", (50.0, 9.0)),
    ])
    def test_bounded_relative_error(self, dist, params):
        rng = np.random.default_rng(97)
        data = getattr(rng, dist)(*params, 30_000)
        data = np.abs(data) + 1.0  # keep values positive for relative error
        estimator = StreamingPercentiles((0.5, 0.9, 0.99), buffer_size=256)
        estimator.observe_many(data)
        for q in (0.5, 0.9, 0.99):
            true = np.percentile(data, 100 * q)
            estimate = estimator.quantile(q)
            assert estimate == pytest.approx(true, rel=0.05), (dist, q)

    def test_untracked_quantile_raises_after_promotion(self):
        estimator = StreamingPercentiles((0.5,), buffer_size=16)
        estimator.observe_many(range(100))
        with pytest.raises(KeyError):
            estimator.quantile(0.9)

    def test_deterministic_for_same_stream(self):
        rng = np.random.default_rng(5)
        data = rng.exponential(2.0, 5000)
        results = []
        for _ in range(2):
            estimator = StreamingPercentiles((0.9,), buffer_size=64)
            estimator.observe_many(data)
            results.append(estimator.quantile(0.9))
        assert results[0] == results[1]

    def test_integer_hop_counts(self):
        # The serving layer's main use: small discrete hop counts.
        rng = np.random.default_rng(17)
        hops = rng.poisson(8.0, 20_000).astype(float)
        estimator = StreamingPercentiles((0.5, 0.99), buffer_size=512)
        estimator.observe_many(hops)
        assert estimator.quantile(0.5) == pytest.approx(
            np.percentile(hops, 50), abs=1.0)
        assert estimator.quantile(0.99) == pytest.approx(
            np.percentile(hops, 99), abs=1.5)


class TestValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            StreamingPercentiles((0.5,), buffer_size=4)
        with pytest.raises(ValueError):
            StreamingPercentiles(())
        with pytest.raises(ValueError):
            StreamingPercentiles((1.5,))

    def test_empty_estimator(self):
        estimator = StreamingPercentiles((0.5,))
        with pytest.raises(ValueError):
            estimator.quantile(0.5)
        assert estimator.summary() == {"count": 0.0}

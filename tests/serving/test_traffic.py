"""Traffic drivers: determinism, loop disciplines, churn-time misses."""

import pytest

from repro.serving.adapters import (ChordServing, KleinbergServing,
                                    VoroNetServing)
from repro.serving.traffic import (build_schedule, serve_closed_loop,
                                   serve_open_loop)
from repro.simulation.metrics import MetricsRegistry
from repro.utils.rng import RandomSource
from repro.workloads.samplers import (MovingObjects, UniformTargets,
                                      ZipfTargets)


def _positions(count, seed=0):
    rng = RandomSource(seed)
    return [tuple(p) for p in rng.generator.uniform(0.02, 0.98, (count, 2))]


@pytest.fixture(scope="module")
def voronet():
    return VoroNetServing(_positions(200), seed=3, track_paths=True)


class TestSchedule:
    def test_deterministic(self):
        one = build_schedule(UniformTargets(100, seed=1), 500, seed=2)
        two = build_schedule(UniformTargets(100, seed=1), 500, seed=2)
        assert one.pairs() == two.pairs()
        assert len(one) == 500

    def test_length_mismatch_rejected(self):
        import numpy as np
        from repro.serving.traffic import Schedule
        with pytest.raises(ValueError):
            Schedule(np.arange(3), np.arange(4))


class TestClosedLoop:
    def test_report_shape_and_determinism(self, voronet):
        schedule = build_schedule(UniformTargets(200, seed=5), 800, seed=6)
        reports = [serve_closed_loop(voronet, schedule, "uniform",
                                     concurrency=8)
                   for _ in range(2)]
        assert reports[0] == reports[1]
        report = reports[0]
        assert report["queries"] == 800
        assert report["misses"] == 0
        assert report["success_rate"] == 1.0
        assert report["hops"]["p50"] <= report["hops"]["p99"]
        assert report["throughput_qps"] > 0
        # closed loop: duration ≈ total hop time / concurrency
        expected = report["hops"]["mean"] * 800 / 8
        assert report["virtual_duration"] == pytest.approx(expected, rel=0.05)

    def test_more_workers_more_throughput(self, voronet):
        schedule = build_schedule(UniformTargets(200, seed=5), 600, seed=6)
        slow = serve_closed_loop(voronet, schedule, "uniform", concurrency=2)
        fast = serve_closed_loop(voronet, schedule, "uniform", concurrency=16)
        assert fast["throughput_qps"] > 3 * slow["throughput_qps"]

    def test_load_tracker_sees_paths(self, voronet):
        schedule = build_schedule(UniformTargets(200, seed=7), 400, seed=8)
        report = serve_closed_loop(voronet, schedule, "uniform", concurrency=4)
        # Every served query contributes its full path (source..owner).
        assert report["load"]["total"] >= report["served"]
        assert 0.0 <= report["load"]["gini"] < 1.0

    def test_skew_concentrates_load(self):
        adapter = VoroNetServing(_positions(300, seed=2), seed=2,
                                 track_paths=True)
        uniform = build_schedule(UniformTargets(300, seed=1), 1500, seed=9)
        skewed = build_schedule(ZipfTargets(300, alpha=1.4, seed=1), 1500,
                                seed=9)
        report_u = serve_closed_loop(adapter, uniform, "uniform", concurrency=8)
        report_z = serve_closed_loop(adapter, skewed, "zipf", concurrency=8)
        assert report_z["load"]["gini"] > report_u["load"]["gini"]

    def test_windows_and_metrics(self, voronet):
        registry = MetricsRegistry()
        schedule = build_schedule(UniformTargets(200, seed=5), 500, seed=6)
        report = serve_closed_loop(voronet, schedule, "uniform", concurrency=8,
                                   window=100.0, metrics=registry)
        assert len(report["windows"]) >= 2
        assert sum(row["queries"] for row in report["windows"]) == 500
        assert registry.histogram_summary(
            "serving.voronet.uniform.window_qps")["count"] >= 2


class TestOpenLoop:
    def test_throughput_tracks_offered_rate(self, voronet):
        schedule = build_schedule(UniformTargets(200, seed=5), 2000, seed=6)
        report = serve_open_loop(voronet, schedule, "uniform",
                                 arrival_rate=5.0, seed=11)
        assert report["mode"] == "open"
        # Open loop with concurrent forwarding: throughput approaches the
        # offered rate (slack only from the final in-flight tail).
        assert report["throughput_qps"] == pytest.approx(5.0, rel=0.1)
        assert report["latency"]["p50"] >= report["hops"]["p50"]

    def test_deterministic(self, voronet):
        schedule = build_schedule(UniformTargets(200, seed=5), 600, seed=6)
        one = serve_open_loop(voronet, schedule, "uniform", arrival_rate=3.0,
                              seed=4)
        two = serve_open_loop(voronet, schedule, "uniform", arrival_rate=3.0,
                              seed=4)
        assert one == two


class TestChurnDuringTraffic:
    def test_turnover_churn_yields_defined_misses(self):
        adapter = VoroNetServing(_positions(250, seed=6), seed=6)
        schedule = build_schedule(UniformTargets(250, seed=2), 2000, seed=3)
        churn = MovingObjects(seed=9, reuse_ids=False)
        report = serve_closed_loop(adapter, schedule, "uniform", concurrency=8,
                                   batch_size=200, churn=churn, churn_every=100)
        # Some scheduled targets departed mid-run: they must surface as
        # defined misses, and the run must not crash.
        assert churn.moves_applied > 0
        assert report["misses"] > 0
        assert report["served"] + report["misses"] == 2000
        assert report["success_rate"] < 1.0
        assert adapter.overlay.stats.query_misses == report["misses"]

    def test_id_reusing_moves_never_miss(self):
        adapter = VoroNetServing(_positions(250, seed=6), seed=6)
        schedule = build_schedule(UniformTargets(250, seed=2), 1500, seed=3)
        churn = MovingObjects(seed=9, reuse_ids=True)
        report = serve_closed_loop(adapter, schedule, "uniform", concurrency=8,
                                   batch_size=200, churn=churn, churn_every=75)
        assert churn.moves_applied > 0
        assert report["misses"] == 0
        assert report["success_rate"] == 1.0

    def test_churn_requires_voronet_adapter(self):
        adapter = ChordServing(100)
        schedule = build_schedule(UniformTargets(100, seed=2), 300, seed=3)
        with pytest.raises(TypeError):
            serve_closed_loop(adapter, schedule, "uniform", concurrency=4,
                              batch_size=50, churn=MovingObjects(seed=1),
                              churn_every=10)


class TestBaselineAdapters:
    def test_kleinberg_requires_square(self):
        with pytest.raises(ValueError):
            KleinbergServing(150)

    def test_kleinberg_paths_are_node_ids(self):
        adapter = KleinbergServing(100, seed=3, track_paths=True)
        outcome = adapter.route_index(0, 99)
        assert outcome.success
        assert outcome.path[0] == 0
        assert outcome.path[-1] == 99
        assert len(outcome.path) == outcome.hops + 1

    def test_chord_lookup_resolves_target(self):
        adapter = ChordServing(64, track_paths=True)
        outcome = adapter.route_index(5, 40)
        assert outcome.success
        assert outcome.path[0] == adapter.ids[5]
        assert outcome.path[-1] == adapter.ids[40]
        assert len(outcome.path) == outcome.hops + 1

#!/usr/bin/env python3
"""VoroNet as a generalisation of Kleinberg's small world.

Section 2 of the paper presents Kleinberg's grid model; VoroNet's claim is
that the same harmonic long-link idea works for *arbitrary* object
placements once the grid is replaced by the Voronoi tessellation.  This
example puts the two side by side:

* the original grid model, with the clustering exponent swept around its
  navigable value s = 2 (the classic U-shaped curve),
* VoroNet on a regular grid placement (it matches the grid model),
* VoroNet on skewed placements the grid model cannot even express,
* the random-shortcut overlay, showing that shortcuts without the harmonic
  distribution are not navigable.

Run with::

    python examples/kleinberg_comparison.py
"""

from __future__ import annotations


from repro.analysis.hops import measure_routing
from repro.baselines.random_graph import RandomGraphOverlay
from repro.core import VoroNet, VoroNetConfig
from repro.smallworld.kleinberg_grid import KleinbergGrid
from repro.smallworld.navigability import sweep_exponents
from repro.utils.rng import RandomSource
from repro.workloads.distributions import (
    ClusteredDistribution,
    GridDistribution,
    PowerLawDistribution,
    UniformDistribution,
)
from repro.workloads.generators import generate_objects


def kleinberg_exponent_sweep() -> None:
    print("=== Kleinberg grid: the clustering exponent s ===")
    points = sweep_exponents(28, [0.0, 1.0, 2.0, 3.0, 4.0], num_pairs=250,
                             rng=RandomSource(1))
    print(f"  {'exponent s':>10} {'mean hops':>10}")
    for point in points:
        print(f"  {point.exponent:>10.1f} {point.mean_hops:>10.1f}")
    print("  Very local links (large s) clearly degrade navigability; the")
    print("  asymptotic advantage of s = 2 over s < 2 only shows at grid")
    print("  sizes far beyond this example (Kleinberg's bound is about the")
    print("  scaling in n, not about small grids).\n")


def voronet_on_arbitrary_placements() -> None:
    print("=== VoroNet: same idea, arbitrary object placements ===")
    num_objects = 900
    workloads = {
        "regular grid (Kleinberg's setting)": GridDistribution(jitter=1e-4),
        "uniform random": UniformDistribution(),
        "power-law α=2": PowerLawDistribution(alpha=2.0, cells_per_axis=8),
        "clustered hot spots": ClusteredDistribution(num_clusters=6, spread=0.03),
    }
    print(f"  {'placement':<36} {'mean hops':>10}")
    for name, distribution in workloads.items():
        overlay = VoroNet(VoroNetConfig(n_max=4 * num_objects, seed=5))
        overlay.insert_many(generate_objects(distribution, num_objects, RandomSource(5)))
        stats = measure_routing(overlay, 300, RandomSource(6))
        print(f"  {name:<36} {stats.mean:>10.1f}")
    grid = KleinbergGrid(30, exponent=2.0, rng=RandomSource(7))
    print(f"  {'(reference: 30×30 Kleinberg grid)':<36} "
          f"{grid.mean_route_length(300, RandomSource(8)):>10.1f}\n")


def shortcuts_need_the_right_distribution() -> None:
    print("=== shortcuts alone are not enough ===")
    positions = generate_objects(UniformDistribution(), 900, RandomSource(11))
    voronet = VoroNet(VoroNetConfig(n_max=3_600, seed=11))
    voronet.insert_many(positions)
    voronet_stats = measure_routing(voronet, 300, RandomSource(12))
    random_graph = RandomGraphOverlay(positions, links_per_node=7,
                                      connect_nearest=True, rng=RandomSource(13))
    random_report = random_graph.measure(300, RandomSource(14))
    print(f"  VoroNet (harmonic long links): {voronet_stats.mean:.1f} hops, "
          f"100% delivery")
    print(f"  random shortcuts             : "
          f"{random_report['mean_hops']:.1f} hops on successes, "
          f"{100 * random_report['success_rate']:.0f}% delivery")
    print("  → greedy routing needs the 1/d² link distribution, not just links\n")


def main() -> None:
    kleinberg_exponent_sweep()
    voronet_on_arbitrary_placements()
    shortcuts_need_the_right_distribution()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a VoroNet overlay, route messages, run queries.

This walks through the core public API in a few minutes of runtime:

1. publish objects (the peers *are* application objects with semantic
   coordinates — here, a tiny catalogue of items described by two
   attributes normalised to [0, 1]),
2. inspect an object's neighbourhood (Voronoi / close / long-range),
3. route between objects and look up arbitrary points of the attribute
   space,
4. run the range / radius / segment queries the attribute-based naming
   enables,
5. remove objects and watch the overlay repair itself.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import VoroNet, VoroNetConfig, point_query, radius_query, range_query
from repro.analysis.degree import degree_summary
from repro.geometry.bounding import BoundingBox
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build an overlay and publish objects.
    # ------------------------------------------------------------------
    # n_max dimensions the overlay (it fixes d_min and the routing bound);
    # the seed makes the run reproducible.
    overlay = VoroNet(VoroNetConfig(n_max=5_000, num_long_links=1, seed=42))

    # Objects are points of the attribute space.  Imagine a product catalogue
    # where attribute 0 is normalised price and attribute 1 is normalised
    # rating: similar products end up as Voronoi neighbours.
    catalogue = {
        "budget-basic": (0.10, 0.30),
        "budget-plus": (0.15, 0.45),
        "mid-range": (0.45, 0.55),
        "mid-premium": (0.55, 0.70),
        "flagship": (0.90, 0.95),
        "overpriced": (0.92, 0.40),
    }
    ids = {name: overlay.insert(position) for name, position in catalogue.items()}
    print(f"published {len(overlay)} named objects")

    # Fill the space with a background population so routing is non-trivial.
    background = generate_objects(UniformDistribution(), 1_500, RandomSource(7))
    overlay.insert_many(background)
    print(f"overlay now holds {len(overlay)} objects\n")

    # ------------------------------------------------------------------
    # 2. Inspect a neighbourhood.
    # ------------------------------------------------------------------
    mid_range = ids["mid-range"]
    view = overlay.neighbor_view(mid_range)
    print(f"'mid-range' view: {len(view.voronoi)} Voronoi neighbours, "
          f"{len(view.close)} close neighbours, "
          f"{len(view.long_range)} long-range contact(s)")
    summary = degree_summary(overlay.degree_histogram())
    print(f"overlay-wide mean Voronoi degree: {summary.mean:.2f} "
          f"(the paper's Figure 5 centres this on 6)\n")

    # ------------------------------------------------------------------
    # 3. Route between objects and locate points.
    # ------------------------------------------------------------------
    route = overlay.route(ids["budget-basic"], ids["flagship"])
    print(f"greedy route budget-basic → flagship: {route.hops} hops")

    lookup = overlay.lookup((0.50, 0.60))
    print(f"the object responsible for attribute point (0.50, 0.60) is "
          f"object {lookup.owner} ({lookup.hops} hops to find it)\n")

    # ------------------------------------------------------------------
    # 4. Attribute-space queries.
    # ------------------------------------------------------------------
    box = BoundingBox(0.40, 0.50, 0.60, 0.75)
    in_box = range_query(overlay, box)
    print(f"range query price∈[0.40,0.60] × rating∈[0.50,0.75]: "
          f"{len(in_box.matches)} objects, "
          f"{in_box.total_messages} messages "
          f"({in_box.route.messages} routing + {in_box.spread_messages} spreading)")

    nearby = radius_query(overlay, catalogue["mid-range"], 0.08)
    print(f"radius query around 'mid-range' (r=0.08): {len(nearby.matches)} objects")

    exact = point_query(overlay, (0.90, 0.95))
    print(f"exact-match query at (0.90, 0.95) found object {exact.matches[0]} "
          f"(the flagship is object {ids['flagship']})\n")

    # ------------------------------------------------------------------
    # 5. Departures: the overlay repairs itself.
    # ------------------------------------------------------------------
    overlay.remove(ids["overpriced"])
    print("removed 'overpriced'; consistency check:",
          "OK" if overlay.check_consistency() == [] else "PROBLEMS")
    route = overlay.route(ids["budget-plus"], ids["flagship"])
    print(f"routing still works after the departure: {route.hops} hops")

    print("\nper-operation statistics so far:")
    for line in overlay.stats.describe():
        print("  " + line)


if __name__ == "__main__":
    main()

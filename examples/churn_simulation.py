#!/usr/bin/env python3
"""Churn: joins, graceful departures and crashes under a virtual clock.

Demonstrates the dynamism machinery of the reproduction:

* the message-level protocol simulator handles a burst of distributed
  joins/leaves and reports the per-operation message costs (the O(1)
  maintenance claim of Section 4.2);
* the discrete-event churn scheduler drives an oracle-mode overlay with
  Poisson join/leave processes on a virtual clock;
* the crash injector removes objects *without* running the departure
  protocol, quantifies the dangling state survivors are left with, and runs
  a repair pass — the failure mode the paper's graceful-leave protocol does
  not cover.

Run with::

    python examples/churn_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import VoroNet, VoroNetConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.failures import ChurnScheduler, CrashInjector
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


def protocol_level_churn() -> None:
    """Distributed joins and leaves, every message counted."""
    print("=== message-level protocol churn ===")
    simulator = ProtocolSimulator(VoroNetConfig(n_max=2_000, seed=3), seed=3)
    positions = generate_objects(UniformDistribution(), 300, RandomSource(3))
    join_reports = [simulator.join(p) for p in positions]
    print(f"joined {len(simulator)} objects")
    steady = join_reports[50:]
    print(f"  mean join cost : {np.mean([r.messages for r in steady]):.1f} messages "
          f"({np.mean([r.routing_hops for r in steady]):.1f} routing hops)")

    rng = RandomSource(4)
    victims = [simulator.object_ids()[rng.integer(0, len(simulator))] for _ in range(80)]
    leave_reports = [simulator.leave(v) for v in dict.fromkeys(victims) if v in simulator.object_ids()]
    print(f"  mean leave cost: {np.mean([r.messages for r in leave_reports]):.1f} messages")
    problems = simulator.verify_views()
    print(f"  local views vs kernel after churn: "
          f"{'consistent' if not problems else problems[:3]}")
    print(f"  mean view size : {simulator.mean_view_size():.1f} entries\n")


def clock_driven_churn() -> None:
    """Poisson churn against the oracle overlay on a virtual clock."""
    print("=== clock-driven churn (oracle overlay) ===")
    engine = SimulationEngine()
    overlay = VoroNet(VoroNetConfig(n_max=5_000, seed=9))
    overlay.insert_many(generate_objects(UniformDistribution(), 400, RandomSource(9)))

    def leave() -> None:
        if len(overlay) > 8:
            overlay.remove(overlay.random_object_id())

    scheduler = ChurnScheduler(
        engine,
        join=lambda position: overlay.insert(position),
        leave=leave,
        join_rate=3.0,       # three joins per time unit on average
        leave_rate=2.0,      # two departures per time unit on average
        rng=RandomSource(10),
    )
    scheduler.start(horizon=120.0)
    engine.run()
    print(f"after {engine.now:.0f} time units: {scheduler.joins_executed} joins, "
          f"{scheduler.leaves_executed} leaves, population {len(overlay)}")
    print(f"  consistency: {'OK' if overlay.check_consistency() == [] else 'PROBLEMS'}")
    print(f"  mean join cost over the run: "
          f"{overlay.stats.joins.mean_messages:.1f} messages\n")


def crash_and_repair() -> None:
    """Abrupt failures, damage assessment and repair."""
    print("=== crashes (no departure protocol) ===")
    overlay = VoroNet(VoroNetConfig(n_max=4_000, seed=21))
    overlay.insert_many(generate_objects(UniformDistribution(), 600, RandomSource(21)))
    injector = CrashInjector(overlay, rng=RandomSource(22))
    injector.crash_random(90)
    damage = injector.assess_damage()
    print(f"crashed {damage.crashed} objects without notice:")
    print(f"  dangling long links     : {damage.dangling_long_links}")
    print(f"  stale close neighbours  : {damage.stale_close_neighbors}")
    print(f"  survivors affected      : {damage.affected_objects}")

    fixed = injector.repair()
    after = injector.assess_damage()
    print(f"repair pass fixed {fixed} entries "
          f"(remaining dangling: {after.total_stale_entries})")

    rng = RandomSource(23)
    ids = overlay.object_ids()
    hops = []
    for _ in range(200):
        a, b = rng.choice(ids, size=2, replace=False)
        result = overlay.route(int(a), int(b))
        assert result.success
        hops.append(result.hops)
    print(f"routing after repair: {np.mean(hops):.1f} hops on average, all successful")


def main() -> None:
    protocol_level_churn()
    clock_driven_churn()
    crash_and_repair()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Attribute-range search: the workload the paper motivates VoroNet with.

The introduction's argument is that hash-based DHTs only support exact
matches, while an object network whose identifiers *are* the attribute
values supports range search natively.  This example builds a skewed
"publication catalogue" (year × normalised citation count), runs range and
segment queries against VoroNet, and contrasts the message cost with what a
Chord DHT needs for the same selectivity (one lookup per discrete value of
the range).

Run with::

    python examples/range_query_search.py
"""

from __future__ import annotations

from repro import VoroNet, VoroNetConfig, range_query, segment_query
from repro.baselines.chord import ChordRing
from repro.geometry.bounding import BoundingBox
from repro.utils.rng import RandomSource
from repro.workloads.distributions import PowerLawDistribution
from repro.workloads.generators import generate_objects


def build_catalogue(num_objects: int, seed: int) -> VoroNet:
    """A skewed catalogue: most objects cluster around popular attribute values."""
    overlay = VoroNet(VoroNetConfig(n_max=4 * num_objects, seed=seed))
    positions = generate_objects(
        PowerLawDistribution(alpha=2.0, cells_per_axis=16), num_objects,
        RandomSource(seed))
    overlay.insert_many(positions)
    return overlay


def main() -> None:
    overlay = build_catalogue(num_objects=2_000, seed=11)
    print(f"catalogue holds {len(overlay)} objects "
          f"(skewed power-law placement, α = 2)\n")

    # ------------------------------------------------------------------
    # Two-attribute range query.
    # ------------------------------------------------------------------
    box = BoundingBox(0.30, 0.60, 0.45, 0.80)
    result = range_query(overlay, box)
    print("range query: attribute0 ∈ [0.30, 0.45], attribute1 ∈ [0.60, 0.80]")
    print(f"  matches        : {len(result.matches)} objects")
    print(f"  routing phase  : {result.route.messages} messages")
    print(f"  spreading phase: {result.spread_messages} messages "
          f"(over {len(result.visited)} participating objects)")
    print(f"  total          : {result.total_messages} messages\n")

    # ------------------------------------------------------------------
    # One-attribute range query = a segment in the attribute space.
    # ------------------------------------------------------------------
    a, b = (0.20, 0.50), (0.80, 0.50)
    seg = segment_query(overlay, a, b)
    print("segment query: attribute0 ∈ [0.20, 0.80] at attribute1 = 0.50")
    print(f"  regions crossed: {len(seg.matches)}")
    print(f"  total messages : {seg.total_messages}\n")

    # ------------------------------------------------------------------
    # What would a DHT pay?  One lookup per discrete attribute value.
    # ------------------------------------------------------------------
    ring = ChordRing(bits=24)
    for i in range(len(overlay)):
        ring.join(f"peer-{i}")
    # A DHT has no attribute locality: it must look up every *possible*
    # discrete value the ranged attribute can take in [0.30, 0.45] — whether
    # or not any object holds that value.  With a modest catalogue resolution
    # of 256 distinct values per attribute that is ~38 independent lookups.
    value_granularity = 256
    values_in_range = max(1, int(round((0.45 - 0.30) * value_granularity)))
    values = [f"attribute-value-{i}" for i in range(values_in_range)]
    chord_messages, _ = ring.range_query_cost(values)
    print("the same range on a Chord DHT (one lookup per possible value):")
    print(f"  values to enumerate: {values_in_range}")
    print(f"  total messages     : {chord_messages}")
    ratio = chord_messages / max(1, result.total_messages)
    print(f"  VoroNet advantage  : {ratio:.1f}× fewer messages "
          "(and the gap widens with finer-grained attributes)\n")

    # ------------------------------------------------------------------
    # Range size sweep: VoroNet's cost tracks the answer size.
    # ------------------------------------------------------------------
    print("range-extent sweep (VoroNet messages vs matches):")
    print(f"  {'extent':>8} {'matches':>8} {'messages':>9}")
    for extent in (0.05, 0.1, 0.2, 0.4):
        sweep_box = BoundingBox(0.3, 0.3, 0.3 + extent, 0.3 + extent)
        sweep = range_query(overlay, sweep_box)
        print(f"  {extent:>8.2f} {len(sweep.matches):>8} {sweep.total_messages:>9}")


if __name__ == "__main__":
    main()

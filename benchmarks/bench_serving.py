"""Benchmark SERVING — the heavy-traffic shoot-out under skewed demand.

Serves the same sampled query schedules through VoroNet and through the
Kleinberg-grid and Chord baselines with the closed-loop traffic driver:

* sustained throughput (wall-clock queries/second of the batched oracle
  router) and virtual-time throughput per system per workload;
* hop-count tails (p50/p90/p99 via the streaming estimator) — the
  serving-time face of the paper's polylog routing claim;
* per-node service load (Gini, max/mean) under uniform vs. Zipf demand —
  what popularity skew does to each topology.

Two verification sections ride along in the record:

* ``twin_parity`` — the oracle plane and the message plane serve one
  schedule over byte-identical overlays; every query's hop count must
  match (the record commits the mismatch census, the gate asserts 0);
* ``protocol`` — closed-loop serving over genuinely contending in-flight
  ``QUERY`` messages, reporting virtual-latency percentiles.

Two entry points:

* ``pytest benchmarks/bench_serving.py`` — the CI smoke wrapper (sizes
  scaled by ``REPRO_BENCH_SCALE``);
* ``python benchmarks/bench_serving.py --output benchmarks/BENCH_serving.json``
  — the standalone runner that produced the canonical record
  (10⁴ objects, 10⁵ queries per system per workload).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.serving.harness import (run_protocol_serving, run_shootout,
                                   twin_parity)

#: Canonical scale: 10⁴ objects (a perfect square — Kleinberg needs the
#: full lattice), 10⁵ queries per system per workload.
DEFAULT_OBJECTS = 10_000
DEFAULT_QUERIES = 100_000
DEFAULT_SEED = 2024
DEFAULT_CONCURRENCY = 8
DEFAULT_ZIPF_ALPHA = 0.9
#: The protocol-plane section runs every query as an in-flight message —
#: orders of magnitude more work per query than the oracle router — so it
#: uses its own (smaller) sizes.
DEFAULT_PROTOCOL_OBJECTS = 1_000
DEFAULT_PROTOCOL_QUERIES = 5_000
DEFAULT_PARITY_OBJECTS = 300
DEFAULT_PARITY_QUERIES = 1_000


def run_serving_bench(objects: int = DEFAULT_OBJECTS,
                      queries: int = DEFAULT_QUERIES, *,
                      seed: int = DEFAULT_SEED,
                      concurrency: int = DEFAULT_CONCURRENCY,
                      zipf_alpha: float = DEFAULT_ZIPF_ALPHA,
                      protocol_objects: int = DEFAULT_PROTOCOL_OBJECTS,
                      protocol_queries: int = DEFAULT_PROTOCOL_QUERIES,
                      parity_objects: int = DEFAULT_PARITY_OBJECTS,
                      parity_queries: int = DEFAULT_PARITY_QUERIES) -> dict:
    """Run the full serving benchmark; returns the JSON bench record."""
    side = round(objects ** 0.5)
    if side * side != objects:
        raise ValueError(
            f"objects must be a perfect square for the Kleinberg lattice, "
            f"got {objects}")
    shootout = run_shootout(objects, queries, seed=seed,
                            workloads=("uniform", "zipf"),
                            zipf_alpha=zipf_alpha, concurrency=concurrency,
                            clock=time.perf_counter)
    parity = twin_parity(parity_objects, parity_queries, seed=seed,
                         concurrency=0)
    started = time.perf_counter()
    protocol = run_protocol_serving(protocol_objects, protocol_queries,
                                    seed=seed, concurrency=concurrency)
    protocol["wall_seconds"] = round(time.perf_counter() - started, 3)
    return {
        "benchmark": "serving",
        "population": objects,
        "queries_per_workload": queries,
        "seed": seed,
        "concurrency": concurrency,
        "zipf_alpha": zipf_alpha,
        "systems": shootout["systems"],
        "twin_parity": parity,
        "protocol": protocol,
    }


def format_serving(record: dict) -> str:
    """Multi-line human rendering of a serving bench record."""
    lines = [
        f"Serving shoot-out @ N={record['population']}, "
        f"{record['queries_per_workload']} queries/workload, "
        f"closed loop x{record['concurrency']}:"
    ]
    for system, by_workload in record["systems"].items():
        for workload, report in by_workload.items():
            hops = report["hops"]
            load = report["load"]
            wall = (f", {report['wall_qps']:.0f} q/s wall"
                    if "wall_qps" in report else "")
            lines.append(
                f"  {system:>9} / {workload:<7} hops p50={hops['p50']:.0f} "
                f"p99={hops['p99']:.0f}  gini={load['gini']:.3f} "
                f"max/mean={load['max_mean']:.1f}  "
                f"ok={report['success_rate']:.3f}{wall}")
    parity = record["twin_parity"]
    lines.append(
        f"twin parity: {parity['queries']} queries, "
        f"{parity['hop_mismatches']} hop mismatches "
        f"(oracle {parity['oracle_total_hops']} vs protocol "
        f"{parity['protocol_total_hops']} total hops)")
    protocol = record["protocol"]
    lines.append(
        f"protocol plane: {protocol['queries']} contending queries, "
        f"latency p50={protocol['latency']['p50']:.1f} "
        f"p99={protocol['latency']['p99']:.1f} (virtual), "
        f"ok={protocol['success_rate']:.3f}")
    return "\n".join(lines)


def _record_healthy(record: dict) -> bool:
    """Correctness gate: parity holds and every run served everything."""
    if not record["twin_parity"]["parity"]:
        return False
    if record["protocol"]["success_rate"] < 1.0:
        return False
    for by_workload in record["systems"].values():
        for report in by_workload.values():
            if report["success_rate"] < 1.0:
                return False
            if report["hops"]["p50"] > report["hops"]["p99"]:
                return False
    return True


def test_serving_smoke(benchmark, bench_scale):
    """Every system serves every workload; parity holds; skew shows up."""
    from conftest import run_once

    side = max(20, int(round(50 * bench_scale ** 0.5)))
    record = run_once(benchmark, run_serving_bench,
                      objects=side * side,
                      queries=max(2000, int(round(5000 * bench_scale))),
                      protocol_objects=200, protocol_queries=600,
                      parity_objects=120, parity_queries=300)
    print()
    print(format_serving(record))
    benchmark.extra_info.update(record)

    assert _record_healthy(record)
    for by_workload in record["systems"].values():
        assert (by_workload["zipf"]["load"]["max_mean"]
                > by_workload["uniform"]["load"]["max_mean"])


def main(argv=None) -> int:
    """Entry point of ``python benchmarks/bench_serving.py``."""
    parser = argparse.ArgumentParser(
        description="Benchmark the serving layer: VoroNet vs. Kleinberg vs. "
                    "Chord under uniform and Zipf demand.")
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS,
                        help="object population (perfect square; default "
                             f"{DEFAULT_OBJECTS})")
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES,
                        help="queries per system per workload "
                             f"(default {DEFAULT_QUERIES})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--concurrency", type=int, default=DEFAULT_CONCURRENCY)
    parser.add_argument("--zipf-alpha", type=float, default=DEFAULT_ZIPF_ALPHA)
    parser.add_argument("--protocol-objects", type=int,
                        default=DEFAULT_PROTOCOL_OBJECTS)
    parser.add_argument("--protocol-queries", type=int,
                        default=DEFAULT_PROTOCOL_QUERIES)
    parser.add_argument("--parity-objects", type=int,
                        default=DEFAULT_PARITY_OBJECTS)
    parser.add_argument("--parity-queries", type=int,
                        default=DEFAULT_PARITY_QUERIES)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON bench record here")
    args = parser.parse_args(argv)

    record = run_serving_bench(
        args.objects, args.queries, seed=args.seed,
        concurrency=args.concurrency, zipf_alpha=args.zipf_alpha,
        protocol_objects=args.protocol_objects,
        protocol_queries=args.protocol_queries,
        parity_objects=args.parity_objects,
        parity_queries=args.parity_queries)
    print(format_serving(record))
    if args.output is not None:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"record written to {args.output}")
    return 0 if _record_healthy(record) else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark ROUTE — epoch-cached routing tables vs per-hop view assembly.

Builds two structurally identical overlays (same seed, same bulk-loaded
positions) differing only in ``use_routing_cache``, routes the same batch
of random object pairs through both, verifies the answers are
byte-identical (owners and hop counts), and reports the throughput ratio.
The cached path serves every hop from the overlay's epoch-invalidated flat
routing tables; the uncached path assembles a fresh ``NeighborView`` per
hop, as the code did before the cache landed.

Two entry points:

* ``pytest benchmarks/bench_routing.py`` — the pytest-benchmark wrapper
  (workload scaled by ``REPRO_BENCH_SCALE``), asserting the canonical
  ≥ 3x speedup at full scale;
* ``python benchmarks/bench_routing.py --objects 5000 --output
  benchmarks/BENCH_routing.json`` — the standalone runner emitting the
  JSON bench record; exits non-zero when parity fails or the speedup
  drops below ``--min-speedup`` (CI smoke runs use 1.0: cached must never
  be slower).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import VoroNet, VoroNetConfig
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_position_array, generate_routing_pairs

#: Overlay size of the canonical record (the acceptance-criterion scale).
DEFAULT_OBJECTS = 5000
DEFAULT_PAIRS = 2000
DEFAULT_SEED = 4242


def run_routing_bench(num_objects: int = DEFAULT_OBJECTS,
                      num_pairs: int = DEFAULT_PAIRS,
                      seed: int = DEFAULT_SEED,
                      num_long_links: int = 1) -> dict:
    """Route the same pair batch cached and uncached; return the record."""
    positions = generate_position_array(
        UniformDistribution(), num_objects, RandomSource(seed))

    cold = {}
    steady = {}
    answers = {}
    for use_cache in (True, False):
        config = VoroNetConfig(n_max=4 * num_objects,
                               num_long_links=num_long_links, seed=seed,
                               use_routing_cache=use_cache)
        overlay = VoroNet(config)
        overlay.bulk_load(positions)
        pairs = list(generate_routing_pairs(
            overlay.object_ids(), num_pairs, RandomSource(seed + 1)))
        # First pass: for the cached variant this builds every table it
        # touches (the one-off cost a static overlay pays once); the
        # uncached variant gets the identical pass so both timings see the
        # same interpreter/branch warm-up.
        started = time.perf_counter()
        results = overlay.route_many(pairs)
        cold[use_cache] = time.perf_counter() - started
        # Second pass: steady state — what every subsequent batch costs.
        started = time.perf_counter()
        results = overlay.route_many(pairs)
        steady[use_cache] = time.perf_counter() - started
        answers[use_cache] = [(r.owner, r.hops) for r in results]

    identical = answers[True] == answers[False]
    return {
        "benchmark": "routing_cache",
        "objects": num_objects,
        "pairs": num_pairs,
        "num_long_links": num_long_links,
        "seed": seed,
        "seconds_cached": round(steady[True], 4),
        "seconds_cached_cold": round(cold[True], 4),
        "seconds_uncached": round(steady[False], 4),
        "routes_per_second_cached": round(num_pairs / steady[True], 1),
        "routes_per_second_uncached": round(num_pairs / steady[False], 1),
        "speedup": round(steady[False] / steady[True], 2),
        "speedup_cold": round(cold[False] / cold[True], 2),
        "owners_and_hops_identical": identical,
        "mean_hops": round(sum(h for _o, h in answers[True]) / num_pairs, 3),
    }


def format_routing_bench(record: dict) -> str:
    """One-paragraph human rendering of a bench record."""
    return (
        f"Routing cache @ {record['objects']} objects, "
        f"{record['pairs']} pairs (k={record['num_long_links']}): "
        f"uncached {record['seconds_uncached']:.2f}s "
        f"({record['routes_per_second_uncached']:.0f}/s), "
        f"cached {record['seconds_cached']:.2f}s "
        f"({record['routes_per_second_cached']:.0f}/s) — "
        f"{record['speedup']:.1f}x steady, {record['speedup_cold']:.1f}x cold; "
        f"owners/hops identical: {record['owners_and_hops_identical']}, "
        f"mean hops: {record['mean_hops']}"
    )


def test_routing_cache_speedup(benchmark, bench_scale):
    """Cached routing beats per-hop view assembly with identical answers."""
    from conftest import run_once

    num_objects = max(1000, int(round(DEFAULT_OBJECTS * bench_scale)))
    num_pairs = max(500, int(round(DEFAULT_PAIRS * bench_scale)))
    record = run_once(benchmark, run_routing_bench,
                      num_objects=num_objects, num_pairs=num_pairs)
    print()
    print(format_routing_bench(record))
    benchmark.extra_info.update(record)

    assert record["owners_and_hops_identical"]
    # The canonical 5000-object record shows >3.5x; leave headroom for
    # small scales and noisy CI machines.
    assert record["speedup"] >= 2.0


def main(argv=None) -> int:
    """Entry point of ``python benchmarks/bench_routing.py``."""
    parser = argparse.ArgumentParser(
        description="Benchmark cached greedy routing against per-hop view assembly.")
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS,
                        help=f"overlay size (default {DEFAULT_OBJECTS})")
    parser.add_argument("--pairs", type=int, default=DEFAULT_PAIRS,
                        help=f"routed pairs (default {DEFAULT_PAIRS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--long-links", type=int, default=1)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail when the cached/uncached ratio drops below "
                             "this (CI smoke uses 1.0)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON bench record here")
    args = parser.parse_args(argv)

    record = run_routing_bench(num_objects=args.objects, num_pairs=args.pairs,
                               seed=args.seed, num_long_links=args.long_links)
    print(format_routing_bench(record))
    if args.output is not None:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"record written to {args.output}")
    ok = record["owners_and_hops_identical"]
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {record['speedup']} < required {args.min_speedup}")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark ABL3 — join/leave maintenance cost (Section 4.2 claims).

Joins cost a poly-logarithmic routing phase plus an O(1) maintenance phase;
leaves cost O(1) messages outright.  The oracle-mode accounting is checked
against the message-level protocol simulator.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_maintenance import (
    format_maintenance,
    run_maintenance_experiment,
)


def test_maintenance_cost(benchmark, bench_scale):
    """Measure join/leave message costs across overlay sizes."""
    result = run_once(benchmark, run_maintenance_experiment, scale=bench_scale)
    print()
    print(format_maintenance(result))

    sizes = result.sizes
    benchmark.extra_info["sizes"] = sizes
    benchmark.extra_info["join_messages"] = {
        s: round(result.join_messages[s], 1) for s in sizes}
    benchmark.extra_info["leave_messages"] = {
        s: round(result.leave_messages[s], 1) for s in sizes}
    benchmark.extra_info["protocol_join_messages"] = round(
        result.protocol_join_messages, 1)

    smallest, largest = sizes[0], sizes[-1]
    size_ratio = largest / smallest
    # Join cost = routing (poly-log) + O(1): growing the overlay 8x must not
    # grow the join cost anywhere near 8x.
    assert result.join_messages[largest] < result.join_messages[smallest] * size_ratio / 2
    # Leave cost is O(1): it must stay essentially flat across sizes.
    assert result.leave_messages[largest] < result.leave_messages[smallest] * 2 + 5
    # The protocol-mode ground truth agrees with the oracle accounting within
    # a small constant factor.
    oracle_join = result.join_messages[result.protocol_size]
    assert result.protocol_join_messages < 6 * oracle_join
    assert oracle_join < 6 * result.protocol_join_messages

"""Benchmark ABL1 — close-neighbour ablation (design choice of Section 3.1).

The close-neighbour sets exist so routing keeps terminating cheaply when
many objects crowd a small area.  This ablation compares clustered overlays
with and without them: removing the sets must never make routing *better*,
and it strips the per-object state the sets cost.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_close_neighbors import (
    format_ablation_close,
    run_ablation_close,
)


def test_ablation_close_neighbors(benchmark, bench_scale):
    """Measure routing with and without the cn(o) sets on clustered data."""
    result = run_once(benchmark, run_ablation_close, scale=bench_scale)
    print()
    print(format_ablation_close(result))

    for workload, variants in result.routing.items():
        with_cn = variants["with-cn"]
        without_cn = variants["without-cn"]
        benchmark.extra_info[f"{workload}_with_cn_mean"] = round(with_cn.mean, 2)
        benchmark.extra_info[f"{workload}_without_cn_mean"] = round(without_cn.mean, 2)
        # Routing never fails either way (greedy on the Delaunay graph always
        # terminates), and keeping the close neighbours never hurts.
        assert with_cn.failures == 0
        assert without_cn.failures == 0
        assert with_cn.mean <= without_cn.mean * 1.05, workload
        # The sets are what costs view space on clustered data.
        assert (result.mean_view_size[workload]["with-cn"]
                >= result.mean_view_size[workload]["without-cn"]), workload

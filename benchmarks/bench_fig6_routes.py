"""Benchmark FIG6 — reproduces Figure 6 (route length vs overlay size).

Paper: mean greedy route length over 100 000 random object pairs, measured
every 10 000 joins up to 300 000 objects, for the uniform and power-law
(α = 1, 2, 5) distributions with one long link per object.  The curves grow
poly-logarithmically and are essentially independent of the distribution.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.fig6_routes import format_fig6, run_fig6


def test_fig6_route_lengths(benchmark, bench_scale):
    """Regenerate Figure 6 and check its qualitative claims."""
    result = run_once(benchmark, run_fig6, scale=bench_scale)
    print()
    print(format_fig6(result))

    largest = result.checkpoints[-1]
    smallest = result.checkpoints[0]
    for name, points in result.series.items():
        series = [p.mean_hops for p in points]
        benchmark.extra_info[f"{name}_final_mean_hops"] = round(series[-1], 2)
        # Poly-log growth: hops grow far slower than sqrt(N).
        growth = series[-1] / max(series[0], 1e-9)
        assert growth < math.sqrt(largest / smallest), name
        # Routes stay comfortably below the sqrt(N) Delaunay-walk regime.
        assert series[-1] < math.sqrt(largest), name

    # Distribution insensitivity: no distribution is dramatically worse than
    # uniform (the paper's curves almost coincide; skew may only help at
    # small scale, see EXPERIMENTS.md).
    uniform_final = result.series["uniform"][-1].mean_hops
    for name, points in result.series.items():
        assert points[-1].mean_hops < 1.6 * uniform_final, name
    benchmark.extra_info["checkpoints"] = result.checkpoints

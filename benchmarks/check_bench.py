"""Unified benchmark-regression gate.

One entry point replaces the per-benchmark ``--min-*`` flag soup in CI:
every registered benchmark runs at smoke scale, its correctness exit code
is enforced, and its gated metrics are compared against **floors derived
from the committed canonical records** (``BENCH_*.json``) instead of
hand-maintained constants::

    floor(metric) = canonical_value x tolerance

The tolerance absorbs two effects at once — noisy shared CI runners and
the smoke workloads being orders of magnitude smaller than the canonical
ones (constant factors bite harder at small N).  Each tolerance is chosen
so the floor lands at or above the bar the old hand-rolled flags set; the
difference is that the floors now *track the canonical records*: landing
a faster canonical run automatically raises every derived floor, with no
second set of numbers to keep in sync.

Usage::

    python benchmarks/check_bench.py --report /tmp/bench-report.json
    python benchmarks/check_bench.py --only shard_scale routing

The report lists every check (smoke value, canonical value, tolerance,
derived floor, verdict) and is uploaded as a CI artifact; the exit code
is non-zero when any benchmark fails its correctness checks or lands
under a derived floor.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple

BENCH_DIR = Path(__file__).resolve().parent

if __name__ == "__main__":  # script mode: benches import repro + each other
    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    sys.path.insert(0, str(BENCH_DIR))


@dataclass(frozen=True)
class Floor:
    """One gated metric: dotted path into the record plus its tolerance."""

    metric: str
    tolerance: float

    def resolve(self, record: dict) -> float:
        value = record
        for part in self.metric.split("."):
            value = value[part]
        return float(value)


@dataclass(frozen=True)
class Bench:
    """One registered benchmark: how to run it, what to gate on."""

    name: str
    module: str
    canonical: str
    argv: Tuple[str, ...]
    floors: Tuple[Floor, ...]


#: Every CI-gated benchmark.  ``argv`` is the smoke-scale workload (the
#: canonical records are produced by each script's defaults); tolerances
#: are calibrated so the derived floors match or exceed the bars the old
#: per-step ``--min-*`` flags encoded (see module docstring).
REGISTRY: Tuple[Bench, ...] = (
    Bench("bulk_build", "bench_bulk_build", "BENCH_bulk_build.json",
          ("--objects", "400"),
          (Floor("speedup", 0.25),)),
    Bench("routing_cache", "bench_routing", "BENCH_routing.json",
          ("--objects", "400", "--pairs", "400"),
          (Floor("speedup", 0.10),)),
    Bench("protocol_bulk_join", "bench_protocol_bulk_join",
          "BENCH_protocol_bulk_join.json",
          ("--objects", "400"),
          (Floor("speedup", 0.30),)),
    Bench("protocol_churn", "bench_protocol_churn", "BENCH_protocol_churn.json",
          ("--objects", "300", "--crash-fraction", "0.1",
           "--max-repair-rounds", "6"),
          (Floor("steady_state_liveness.reduction", 0.50),)),
    Bench("engine", "bench_engine", "BENCH_engine.json",
          ("--objects", "500", "--churn-ops", "60", "--repeat", "2"),
          (Floor("speedup", 0.40), Floor("optimized_messages_per_sec", 0.10))),
    Bench("shard_scale", "bench_shard_scale", "BENCH_shard_scale.json",
          ("--sizes", "4000", "16000", "--warm-tables", "500",
           "--churn-events", "10", "--pairs", "2000", "--workers", "2"),
          # Canonical reduction at N=10^6 is ~5000x; at the 16k smoke
          # scale the coarser shard grid yields ~100x.  0.005 puts the
          # floor at ~25x: far under honest smoke runs, far over the
          # ~1x a broken per-shard invalidation would produce.
          (Floor("rebuild_reduction_at_largest", 0.005),)),
    Bench("serving", "bench_serving", "BENCH_serving.json",
          ("--objects", "2500", "--queries", "5000",
           "--protocol-objects", "200", "--protocol-queries", "600",
           "--parity-objects", "120", "--parity-queries", "300"),
          # The exit code already enforces correctness (twin parity, 100%
          # served).  The floors gate the headline numbers: sustained
          # oracle-plane throughput (0.05 leaves room for loaded CI
          # runners; a broken batcher would fall orders of magnitude) and
          # the uniform-workload success rate tracking canonical 1.0.
          (Floor("systems.voronet.uniform.wall_qps", 0.05),
           Floor("systems.voronet.uniform.success_rate", 0.99))),
    Bench("partition_merge", "bench_partition_merge",
          "BENCH_partition_merge.json",
          ("--objects", "48", "--queries-per-side", "6"),
          # The exit code already enforces the hard bar (every scenario
          # converged, oracle/routing parity, zero stable-phase misses);
          # the floors pin the two headline metrics against the
          # canonical record so a silently weakened matrix still fails.
          (Floor("converged_fraction", 1.0),
           Floor("stable_success_rate_min", 1.0))),
)


def run_bench(bench: Bench, smoke_dir: Path) -> dict:
    """Run one benchmark at smoke scale and evaluate its derived floors."""
    canonical = json.loads((BENCH_DIR / bench.canonical).read_text())
    smoke_path = smoke_dir / f"bench_{bench.name}_smoke.json"
    module = importlib.import_module(bench.module)
    exit_code = module.main(list(bench.argv) + ["--output", str(smoke_path)])
    result = {
        "name": bench.name,
        "exit_code": exit_code,
        "checks": [],
        "pass": exit_code == 0,
    }
    if not smoke_path.exists():
        result["pass"] = False
        result["error"] = "benchmark wrote no smoke record"
        return result
    smoke = json.loads(smoke_path.read_text())
    for floor in bench.floors:
        canonical_value = floor.resolve(canonical)
        smoke_value = floor.resolve(smoke)
        bar = canonical_value * floor.tolerance
        ok = smoke_value >= bar
        result["checks"].append({
            "metric": floor.metric,
            "smoke": smoke_value,
            "canonical": canonical_value,
            "tolerance": floor.tolerance,
            "floor": round(bar, 4),
            "pass": ok,
        })
        result["pass"] = result["pass"] and ok
    return result


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python benchmarks/check_bench.py``."""
    parser = argparse.ArgumentParser(
        description="Run every registered benchmark at smoke scale and gate "
                    "on floors derived from the canonical BENCH_*.json records.")
    parser.add_argument("--only", nargs="+", default=None,
                        metavar="NAME", choices=[b.name for b in REGISTRY],
                        help="restrict to these benchmarks")
    parser.add_argument("--report", type=Path, default=None,
                        help="write the JSON gate report here")
    parser.add_argument("--smoke-dir", type=Path, default=Path("/tmp/bench-smoke"),
                        help="directory for the smoke bench records")
    args = parser.parse_args(argv)

    selected = [b for b in REGISTRY if args.only is None or b.name in args.only]
    args.smoke_dir.mkdir(parents=True, exist_ok=True)
    results: List[dict] = []
    for bench in selected:
        print(f"=== {bench.name}")
        results.append(run_bench(bench, args.smoke_dir))
        outcome = "PASS" if results[-1]["pass"] else "FAIL"
        for check in results[-1]["checks"]:
            print(f"    {check['metric']}: {check['smoke']:.4g} "
                  f"(floor {check['floor']:.4g} = canonical "
                  f"{check['canonical']:.4g} x {check['tolerance']}) "
                  f"{'ok' if check['pass'] else 'UNDER FLOOR'}")
        print(f"    [{outcome}]")
    report = {"results": results, "pass": all(r["pass"] for r in results)}
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.report}")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark PARTITION-MERGE — split-brain service and anti-entropy heal.

Drives the partition-merge subsystem (:mod:`repro.simulation.merge`)
through its scenario matrix: a 2-way even split, an asymmetric 80/20
split, a 3-way split, and repeated flapping partitions — every scenario
with **both-side inserts** while split (the colliding side-local
published ids the heal must resolve) and per-side query service measured
in both the degraded window (views still reference the far side) and the
stabilised window (each side repaired against its own fork).

The record asserts the acceptance bar of the subsystem, not mere
completion: every scenario must heal to a clean ``verify_views()``,
per-node views byte-identical to a never-split oracle tessellation built
from the union population, zero routing-parity mismatches on sampled
lookups, and 100% stable-phase availability on every side.  Headline
gated metrics: ``converged_fraction`` (1.0 — any scenario failing to
merge is a regression) and ``stable_success_rate_min``.

Two entry points:

* ``pytest benchmarks/bench_partition_merge.py`` — the pytest wrapper at
  controlled scale, asserting the same convergence bar;
* ``python benchmarks/bench_partition_merge.py --output
  benchmarks/BENCH_partition_merge.json`` — the standalone runner
  emitting the JSON bench record; exits non-zero when any scenario fails
  to converge, loses oracle/routing parity, or drops stable-phase
  queries (CI smoke runs shrink ``--objects`` with the same bar).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.simulation.merge import ProtocolMergeHarness

#: Base overlay size of the canonical record; scenarios derive their own
#: sizes from it (k-way splits need more members per side).
DEFAULT_OBJECTS = 140
DEFAULT_SEED = 4242


def scenario_matrix(num_objects: int, seed: int) -> dict:
    """The benchmarked scenarios: name -> harness parameters."""
    return {
        "two_way": dict(num_objects=num_objects, seed=seed,
                        num_sides=2, cycles=1),
        "two_way_asymmetric": dict(num_objects=num_objects, seed=seed + 1,
                                   num_sides=2, cycles=1,
                                   side_fractions=(0.8, 0.2)),
        "three_way": dict(num_objects=max(num_objects, 48), seed=seed + 2,
                          num_sides=3, cycles=1),
        "flapping": dict(num_objects=max(num_objects * 3 // 4, 32),
                         seed=seed + 3, num_sides=2, cycles=3),
    }


def run_scenario(name: str, params: dict, *, inserts_per_side: int,
                 queries_per_side: int) -> dict:
    """Run one harness scenario and summarise it as a JSON-safe dict."""
    harness = ProtocolMergeHarness(inserts_per_side=inserts_per_side,
                                   queries_per_side=queries_per_side,
                                   **params)
    started = time.perf_counter()
    report = harness.run()
    seconds = time.perf_counter() - started
    merges = report.cycle_reports
    return {
        "scenario": name,
        "objects": params["num_objects"],
        "sides": report.sides,
        "cycles": report.cycles,
        "converged": report.converged,
        "oracle_view_parity": report.oracle_view_parity,
        "routing_parity_queries": report.routing_parity_queries,
        "routing_parity_mismatches": report.routing_parity_mismatches,
        "final_verify_problems": report.final_verify_problems,
        "boundary_edges": [m.boundary_edges for m in merges],
        "merge_rounds": [m.rounds for m in merges],
        "digest_messages": sum(m.digest_messages for m in merges),
        "reconcile_messages": sum(m.reconcile_messages for m in merges),
        "merge_messages": sum(m.messages for m in merges),
        "id_collisions_resolved": sum(m.id_collisions_resolved
                                      for m in merges),
        "coordinate_conflicts": sum(m.coordinate_conflicts for m in merges),
        "union_inserts": sum(m.union_inserts for m in merges),
        "time_to_converge_max": max(m.time_to_converge for m in merges),
        "cross_references_at_split": [d.total_cross_references
                                      for d in report.damage_reports],
        "availability": report.availability,
        "messages": report.messages,
        "virtual_time": round(report.virtual_time, 3),
        "seconds": round(seconds, 4),
    }


def run_partition_merge(num_objects: int = DEFAULT_OBJECTS,
                        seed: int = DEFAULT_SEED,
                        inserts_per_side: int = 2,
                        queries_per_side: int = 12) -> dict:
    """Run the full matrix and return the JSON-serialisable bench record."""
    scenarios = {}
    for name, params in scenario_matrix(num_objects, seed).items():
        scenarios[name] = run_scenario(name, params,
                                       inserts_per_side=inserts_per_side,
                                       queries_per_side=queries_per_side)
    converged = sum(1 for s in scenarios.values() if s["converged"])
    stable_rates = [s["availability"]["stable_success_rate"]
                    for s in scenarios.values()]
    degraded_rates = [s["availability"]["degraded_success_rate"]
                      for s in scenarios.values()]
    return {
        "benchmark": "partition_merge",
        "objects": num_objects,
        "seed": seed,
        "inserts_per_side": inserts_per_side,
        "queries_per_side": queries_per_side,
        "scenarios": scenarios,
        "converged_fraction": converged / len(scenarios),
        "oracle_parity": all(s["oracle_view_parity"]
                             for s in scenarios.values()),
        "routing_parity_mismatches": sum(s["routing_parity_mismatches"]
                                         for s in scenarios.values()),
        "stable_success_rate_min": min(stable_rates),
        "degraded_success_rate_mean": round(
            sum(degraded_rates) / len(degraded_rates), 4),
        "id_collisions_resolved": sum(s["id_collisions_resolved"]
                                      for s in scenarios.values()),
        "time_to_converge_max": max(s["time_to_converge_max"]
                                    for s in scenarios.values()),
        "seconds_total": round(sum(s["seconds"]
                                   for s in scenarios.values()), 4),
    }


def record_passes(record: dict) -> bool:
    """The acceptance bar the exit code (and CI gate) enforces."""
    return (record["converged_fraction"] == 1.0
            and record["oracle_parity"]
            and record["routing_parity_mismatches"] == 0
            and record["stable_success_rate_min"] == 1.0)


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_partition_merge_matrix_converges():
    record = run_partition_merge(num_objects=48, queries_per_side=6)
    assert record_passes(record), record


# ----------------------------------------------------------------------
# standalone runner
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Partition/merge scenario-matrix benchmark.")
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS,
                        help=f"base overlay size (default {DEFAULT_OBJECTS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--inserts-per-side", type=int, default=2,
                        help="split-era inserts per side per cycle (default 2)")
    parser.add_argument("--queries-per-side", type=int, default=12,
                        help="stable-phase queries per side (default 12)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON bench record here")
    args = parser.parse_args(argv)

    record = run_partition_merge(num_objects=args.objects, seed=args.seed,
                                 inserts_per_side=args.inserts_per_side,
                                 queries_per_side=args.queries_per_side)
    for name, s in record["scenarios"].items():
        print(f"{name}: converged={s['converged']} "
              f"parity={s['oracle_view_parity']} "
              f"collisions={s['id_collisions_resolved']} "
              f"t_converge={s['time_to_converge_max']:.1f} "
              f"stable={s['availability']['stable_success_rate']:.2f} "
              f"degraded={s['availability']['degraded_success_rate']:.2f} "
              f"({s['seconds']:.2f}s)")
    print(f"converged_fraction={record['converged_fraction']} "
          f"stable_min={record['stable_success_rate_min']} "
          f"t_converge_max={record['time_to_converge_max']:.1f}")
    if args.output is not None:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"record written to {args.output}")
    return 0 if record_passes(record) else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark ENGINE — raw message-plane throughput.

Measures the engine/network hot path in isolation: a message stream
captured from a real protocol run (an N-object ``bulk_join`` followed by
graceful churn and one heartbeat round) is replayed through two planes —
the current :class:`~repro.simulation.engine.SimulationEngine` /
:class:`~repro.simulation.network.Network` stack and a faithful replica of
the pre-optimisation plane (dataclass events compared in Python, a lambda
closure per delivery, virtual ``sample()`` dispatch, delivery-time handler
lookup, an O(n) quiescence scan) — with no-op recipients, so the numbers
isolate scheduling, heap ordering, fault/latency dispatch and delivery
from protocol logic.  The replay reproduces the real flow's shape by
sending in bounded chunks and draining between them.

A second micro-metric times :attr:`SimulationEngine.quiescent` against a
large pending queue: the optimized engine answers from an incrementally
maintained counter (O(1)), the legacy plane scans the queue.

Two entry points:

* ``pytest benchmarks/bench_engine.py`` — the pytest-benchmark wrapper
  (workload scaled by ``REPRO_BENCH_SCALE``), asserting the optimized
  plane is faster at smoke scale;
* ``python benchmarks/bench_engine.py --objects 2000 --output
  benchmarks/BENCH_engine.json`` — the standalone runner emitting the
  JSON bench record; exits non-zero when the speedup or the absolute
  events-per-second floor is violated (CI smoke runs use conservative
  floors so hot-path regressions fail the build).
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

if True:  # script & pytest mode: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import VoroNetConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.faults import HeartbeatDetector
from repro.simulation.network import Message, Network
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects

DEFAULT_OBJECTS = 2000
DEFAULT_CHURN_OPS = 200
DEFAULT_SEED = 4242
DEFAULT_REPEAT = 4
DEFAULT_CHUNK = 256


# ----------------------------------------------------------------------
# the legacy plane — a faithful replica of the pre-optimisation engine
# and network layer, kept verbatim as the benchmark baseline
# ----------------------------------------------------------------------
@dataclass(order=True)
class _LegacyEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: Optional[str] = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self) -> None:
        if not self.cancelled:
            self.action()


class _LegacyEngine:
    def __init__(self) -> None:
        self._queue: List[_LegacyEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def quiescent(self) -> bool:
        return not any(not event.cancelled for event in self._queue)

    def schedule(self, delay: float, action: Callable[[], None],
                 label: Optional[str] = None) -> _LegacyEvent:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = _LegacyEvent(time=self._now + delay,
                             sequence=next(self._sequence),
                             action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self._processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed


class _LegacyConstantLatency:
    def __init__(self, latency: float = 1.0) -> None:
        self.latency = latency

    def sample(self, message) -> float:  # virtual dispatch on every send
        return self.latency


class _LegacyNetwork:
    def __init__(self, engine: _LegacyEngine, latency=None) -> None:
        self._engine = engine
        self._latency = latency if latency is not None else _LegacyConstantLatency(1.0)
        self._handlers: Dict[int, Callable] = {}
        self.faults = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_lost = 0
        self.sent_by_kind: Dict[str, int] = {}

    def register(self, node_id: int, handler: Callable) -> None:
        self._handlers[node_id] = handler

    def send(self, message) -> None:
        if message.sender == message.recipient:
            self._engine.schedule(0.0, lambda: self._deliver(message),
                                  label=f"self:{message.kind}")
            return
        self.messages_sent += 1
        self.sent_by_kind[message.kind] = self.sent_by_kind.get(message.kind, 0) + 1
        extra_delay = 0.0
        if self.faults is not None:
            decision = self.faults.decide(message, self._engine.now)
            if not decision.deliver:
                self.messages_lost += 1
                return
            extra_delay = decision.extra_delay
        delay = self._latency.sample(message) + extra_delay
        self._engine.schedule(delay, lambda: self._deliver(message),
                              label=message.kind)

    def _deliver(self, message) -> None:
        handler = self._handlers.get(message.recipient)
        if handler is None:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1 if message.sender != message.recipient else 0
        handler(message)


@dataclass
class _LegacyMessage:
    sender: int
    recipient: int
    kind: str
    payload: Dict = field(default_factory=dict)
    hop_index: int = 0


# ----------------------------------------------------------------------
# workload capture & replay
# ----------------------------------------------------------------------
class _RecordingNetwork(Network):
    """Network that logs every send (endpoints + kind) before processing it."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.log: List[tuple] = []

    def send(self, message: Message) -> None:
        self.log.append((message.sender, message.recipient, message.kind))
        super().send(message)


def capture_workload(objects: int, churn_ops: int, seed: int) -> List[tuple]:
    """Message stream of a real bulk_join + churn + heartbeat run."""
    config = VoroNetConfig(n_max=4 * (objects + churn_ops + 8),
                           num_long_links=1, seed=seed)
    simulator = ProtocolSimulator(config, seed=seed)
    simulator.network = _RecordingNetwork(simulator.engine)
    positions = generate_objects(UniformDistribution(), objects,
                                 RandomSource(seed))
    simulator.bulk_join(positions)
    rng = RandomSource(seed + 1)
    for _ in range(churn_ops):
        if rng.uniform() < 0.6:
            simulator.join(rng.random_point())
        else:
            ids = simulator.object_ids()
            if len(ids) > 8:
                simulator.leave(ids[rng.integer(0, len(ids))])
    HeartbeatDetector(simulator).run_round()
    return simulator.network.log


def _replay_once(engine, network, message_cls, log, chunk: int) -> None:
    send = network.send
    run = engine.run
    for start in range(0, len(log), chunk):
        for sender, recipient, kind in log[start:start + chunk]:
            send(message_cls(sender, recipient, kind))
        run()


def replay_plane(plane: str, log: List[tuple], repeat: int,
                 chunk: int) -> float:
    """Replay the stream ``repeat`` times; returns total wall seconds."""
    node_ids = {sender for sender, _r, _k in log}
    node_ids.update(recipient for _s, recipient, _k in log)

    def noop(message) -> None:
        return None

    total = 0.0
    for _ in range(repeat):
        if plane == "legacy":
            engine = _LegacyEngine()
            network = _LegacyNetwork(engine)
            message_cls = _LegacyMessage
        else:
            engine = SimulationEngine()
            network = Network(engine)
            message_cls = Message
        for node_id in node_ids:
            network.register(node_id, noop)
        started = time.perf_counter()
        _replay_once(engine, network, message_cls, log, chunk)
        total += time.perf_counter() - started
    return total


def time_quiescence(plane: str, events: int, checks: int) -> float:
    """Seconds for ``checks`` quiescent reads after a mass cancellation.

    The scenario is churn teardown: ``ChurnScheduler.stop`` cancels every
    pending arrival, then ``bulk_join`` polls ``engine.quiescent`` as its
    precondition.  The legacy plane scans the whole cancelled-dominated
    queue per check (O(n)); the optimized engine answers from its
    incremental counter (and compacted the queue as cancellations crossed
    half the entries).
    """
    engine = _LegacyEngine() if plane == "legacy" else SimulationEngine()
    scheduled = [engine.schedule(float(index % 97) + 1.0, _noop_thunk)
                 for index in range(events)]
    for event in scheduled:
        event.cancel()
    started = time.perf_counter()
    for _ in range(checks):
        engine.quiescent
    return time.perf_counter() - started


def _noop_thunk() -> None:
    return None


# ----------------------------------------------------------------------
# the benchmark record
# ----------------------------------------------------------------------
def run_engine_bench(objects: int = DEFAULT_OBJECTS,
                     churn_ops: int = DEFAULT_CHURN_OPS,
                     seed: int = DEFAULT_SEED,
                     repeat: int = DEFAULT_REPEAT,
                     chunk: int = DEFAULT_CHUNK,
                     quiescence_events: int = 10_000,
                     quiescence_checks: int = 100) -> dict:
    """Capture the workload once and measure both planes."""
    log = capture_workload(objects, churn_ops, seed)
    # Interleave the planes' repetitions? Not needed: each replay builds a
    # fresh engine/network, and the stream dominates any warm-up effects.
    legacy_seconds = replay_plane("legacy", log, repeat, chunk)
    optimized_seconds = replay_plane("optimized", log, repeat, chunk)
    replayed = len(log) * repeat
    legacy_throughput = replayed / legacy_seconds
    optimized_throughput = replayed / optimized_seconds
    legacy_quiescence = time_quiescence("legacy", quiescence_events,
                                        quiescence_checks)
    optimized_quiescence = time_quiescence("optimized", quiescence_events,
                                           quiescence_checks)
    return {
        "benchmark": "engine",
        "objects": objects,
        "churn_ops": churn_ops,
        "seed": seed,
        "messages": len(log),
        "repeat": repeat,
        "chunk": chunk,
        "legacy_seconds": round(legacy_seconds, 4),
        "optimized_seconds": round(optimized_seconds, 4),
        "legacy_messages_per_sec": round(legacy_throughput),
        "optimized_messages_per_sec": round(optimized_throughput),
        "speedup": round(optimized_throughput / legacy_throughput, 2),
        "quiescence": {
            "pending_events": quiescence_events,
            "checks": quiescence_checks,
            "legacy_checks_per_sec": round(quiescence_checks
                                           / max(legacy_quiescence, 1e-9)),
            "optimized_checks_per_sec": round(quiescence_checks
                                              / max(optimized_quiescence, 1e-9)),
        },
    }


def format_engine(record: dict) -> str:
    """One-paragraph human rendering of a bench record."""
    quiescence = record["quiescence"]
    return (
        f"Engine plane @ {record['objects']} objects "
        f"({record['messages']} msgs × {record['repeat']}): "
        f"legacy {record['legacy_messages_per_sec']:,} msg/s → "
        f"optimized {record['optimized_messages_per_sec']:,} msg/s "
        f"({record['speedup']:.2f}×); quiescent @ "
        f"{quiescence['pending_events']} pending: "
        f"{quiescence['legacy_checks_per_sec']:,} → "
        f"{quiescence['optimized_checks_per_sec']:,} checks/s"
    )


def test_engine_plane_throughput(benchmark, bench_scale):
    """The optimized plane must beat the legacy replica at smoke scale."""
    from conftest import run_once

    objects = max(300, int(round(DEFAULT_OBJECTS * bench_scale * 0.25)))
    record = run_once(benchmark, run_engine_bench, objects=objects,
                      churn_ops=50, repeat=2)
    print()
    print(format_engine(record))
    benchmark.extra_info.update(record)

    assert record["speedup"] >= 1.2
    quiescence = record["quiescence"]
    assert (quiescence["optimized_checks_per_sec"]
            > quiescence["legacy_checks_per_sec"])


def main(argv=None) -> int:
    """Entry point of ``python benchmarks/bench_engine.py``."""
    parser = argparse.ArgumentParser(
        description="Benchmark the message plane against the legacy replica.")
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS)
    parser.add_argument("--churn-ops", type=int, default=DEFAULT_CHURN_OPS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT)
    parser.add_argument("--chunk", type=int, default=DEFAULT_CHUNK)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless optimized/legacy ≥ this")
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="fail unless optimized msgs/sec ≥ this floor")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON bench record here")
    args = parser.parse_args(argv)

    record = run_engine_bench(objects=args.objects, churn_ops=args.churn_ops,
                              seed=args.seed, repeat=args.repeat,
                              chunk=args.chunk)
    print(format_engine(record))
    if args.output is not None:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"record written to {args.output}")
    failed = False
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {record['speedup']:.2f} < {args.min_speedup}")
        failed = True
    if (args.min_throughput is not None
            and record["optimized_messages_per_sec"] < args.min_throughput):
        print(f"FAIL: throughput {record['optimized_messages_per_sec']:,} "
              f"msg/s < {args.min_throughput:,.0f}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

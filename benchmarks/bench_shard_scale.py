"""Benchmark SHARD — million-object substrate: sharded epochs at scale.

Demonstrates the Morton-shard substrate on one machine:

* ``bulk_load`` of N = 10⁶ objects into the sharded node store, plus a
  routing sweep over the result (serial and with one fork worker per
  Morton shard range, merged statistics);
* the per-shard epoch claim — **rebuild work grows with shard size, not
  overlay size**: at each overlay size a fixed pool of warm routing
  tables is churned, and the tables rebuilt per churn event are counted
  for the sharded store and for the flat-store baseline
  (``shard_level=0``, the pre-shard global epoch).  Flat rebuilds stay at
  the warm-pool size regardless of N; sharded rebuilds shrink as the
  shard grid refines.

Two entry points:

* ``pytest benchmarks/bench_shard_scale.py`` — the CI smoke wrapper
  (sizes scaled by ``REPRO_BENCH_SCALE``, minutes → seconds);
* ``python benchmarks/bench_shard_scale.py --sizes 62500 250000 1000000
  --output benchmarks/BENCH_shard_scale.json`` — the standalone runner
  that produced the canonical million-object record.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import VoroNet, VoroNetConfig
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_position_array, generate_routing_pairs

#: Overlay sizes of the canonical record; the largest is the
#: acceptance-criterion scale (10⁶ objects on one machine).
DEFAULT_SIZES = (62_500, 250_000, 1_000_000)
DEFAULT_SEED = 4242
#: Warm routing tables per churn probe (the fixed "rebuildable" pool).
DEFAULT_WARM_TABLES = 2000
#: Insert/remove churn events per probe.
DEFAULT_CHURN_EVENTS = 20
DEFAULT_PAIRS = 20_000


def _build_overlay(positions, *, seed: int, shard_level: Optional[int]) -> Tuple[VoroNet, float]:
    """Bulk-load one overlay; returns it plus the build seconds."""
    config = VoroNetConfig(n_max=4 * len(positions), num_long_links=1,
                           seed=seed, shard_level=shard_level)
    overlay = VoroNet(config)
    started = time.perf_counter()
    overlay.bulk_load(positions)
    return overlay, time.perf_counter() - started


def _churn_probe(overlay: VoroNet, *, warm_tables: int, churn_events: int,
                 seed: int) -> dict:
    """Count routing-table rebuilds a fixed churn load causes.

    Warms ``warm_tables`` tables, then alternates one insert+remove churn
    event with a full re-request of the warm pool, counting rebuilds per
    event.  A global epoch rebuilds the whole pool every event; per-shard
    epochs rebuild only the tables whose shard the event touched.
    """
    rng = RandomSource(seed)
    ids = overlay.object_ids()
    warm = [ids[rng.integer(0, len(ids))] for _ in range(warm_tables)]
    for object_id in warm:
        overlay.routing_table(object_id)
    stats = overlay.stats
    rebuilds = 0
    for _ in range(churn_events):
        position = (rng.uniform(), rng.uniform())
        victim = overlay.insert(position)
        overlay.remove(victim)
        before = stats.routing_table_rebuilds
        for object_id in warm:
            overlay.routing_table(object_id)
        rebuilds += stats.routing_table_rebuilds - before
    return {
        "warm_tables": warm_tables,
        "churn_events": churn_events,
        "rebuilds": rebuilds,
        "rebuilds_per_event": round(rebuilds / churn_events, 1),
    }


# Shard-range routing workers.  The overlay is published module-level
# before the fork so workers inherit it copy-on-write; chunks of routing
# pairs (one Morton shard range of sources per worker) are the only data
# crossing the process boundary.
_FORK_OVERLAY: Optional[VoroNet] = None


def _route_pairs(overlay: VoroNet, pairs: List[Tuple[int, int]]) -> Tuple[List[int], int]:
    results = overlay.route_many(pairs)
    hops = [r.hops for r in results if r.success]
    return hops, len(results) - len(hops)


def _route_chunk(pairs: List[Tuple[int, int]]) -> Tuple[List[int], int]:
    return _route_pairs(_FORK_OVERLAY, pairs)


def _partition_by_shard_range(overlay: VoroNet, pairs: Sequence[Tuple[int, int]],
                              workers: int) -> List[List[Tuple[int, int]]]:
    """Split routing pairs into one chunk per Morton shard range of sources."""
    store = overlay.shard_store
    ranges = store.shard_ranges(workers)
    chunks: List[List[Tuple[int, int]]] = [[] for _ in ranges]
    bounds = [hi for _, hi in ranges]
    for pair in pairs:
        shard = store.shard_of(pair[0])
        for index, hi in enumerate(bounds):
            if shard < hi:
                chunks[index].append(pair)
                break
    return [chunk for chunk in chunks if chunk]


def _parallel_routing(overlay: VoroNet, pairs: Sequence[Tuple[int, int]],
                      workers: int) -> Tuple[List[int], int, float]:
    """Route ``pairs`` with one fork worker per shard range; merge the stats."""
    global _FORK_OVERLAY
    if workers <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        started = time.perf_counter()
        hops, failures = _route_pairs(overlay, list(pairs))
        return hops, failures, time.perf_counter() - started
    chunks = _partition_by_shard_range(overlay, pairs, workers)
    _FORK_OVERLAY = overlay
    try:
        context = multiprocessing.get_context("fork")
        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=min(workers, len(chunks)),
                                 mp_context=context) as pool:
            futures = [pool.submit(_route_chunk, chunk) for chunk in chunks]
            merged: List[int] = []
            failures = 0
            for future in futures:
                hops, failed = future.result()
                merged.extend(hops)
                failures += failed
        return merged, failures, time.perf_counter() - started
    finally:
        _FORK_OVERLAY = None


def run_shard_scale(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = DEFAULT_SEED,
                    *, warm_tables: int = DEFAULT_WARM_TABLES,
                    churn_events: int = DEFAULT_CHURN_EVENTS,
                    num_pairs: int = DEFAULT_PAIRS,
                    routing_workers: int = 4) -> dict:
    """Run the shard-scale benchmark; returns the JSON bench record."""
    sizes = sorted(set(int(s) for s in sizes))
    rng = RandomSource(seed)
    per_size: List[dict] = []
    headline: dict = {}
    for size in sizes:
        positions = generate_position_array(UniformDistribution(), size, rng)
        pool = min(warm_tables, max(64, size // 8))

        sharded, seconds_sharded = _build_overlay(positions, seed=seed,
                                                  shard_level=None)
        level = sharded.shard_store.level
        sharded_probe = _churn_probe(sharded, warm_tables=pool,
                                     churn_events=churn_events, seed=seed + 1)
        if size == sizes[-1]:
            consistency_problems = len(sharded.check_consistency())
            pairs = generate_routing_pairs(sharded.object_ids(), num_pairs,
                                           RandomSource(seed + 2))
            started = time.perf_counter()
            serial_hops, serial_failures = _route_pairs(sharded, list(pairs))
            seconds_serial = time.perf_counter() - started
            merged_hops, merged_failures, seconds_parallel = _parallel_routing(
                sharded, pairs, routing_workers)
            headline = {
                "objects": size,
                "shard_level": level,
                "num_shards": sharded.shard_store.num_shards,
                "seconds_bulk_load": round(seconds_sharded, 2),
                "objects_per_second": round(size / seconds_sharded),
                "consistency_problems": consistency_problems,
                "routing": {
                    "pairs": len(pairs),
                    "seconds": round(seconds_serial, 3),
                    "routes_per_second": round(len(pairs) / seconds_serial, 1),
                    "mean_hops": round(sum(serial_hops) / max(len(serial_hops), 1), 3),
                    "failures": serial_failures,
                },
                "parallel_routing": {
                    "workers": routing_workers,
                    "seconds": round(seconds_parallel, 3),
                    "routes_per_second": round(len(pairs) / seconds_parallel, 1),
                    "failures": merged_failures,
                    "identical_to_serial": sorted(merged_hops) == sorted(serial_hops),
                },
            }
        del sharded

        flat, seconds_flat = _build_overlay(positions, seed=seed, shard_level=0)
        flat_probe = _churn_probe(flat, warm_tables=pool,
                                  churn_events=churn_events, seed=seed + 1)
        del flat

        reduction = (flat_probe["rebuilds"] / sharded_probe["rebuilds"]
                     if sharded_probe["rebuilds"] else float(flat_probe["rebuilds"]))
        per_size.append({
            "objects": size,
            "shard_level": level,
            "num_shards": 4 ** level,
            "seconds_bulk_sharded": round(seconds_sharded, 2),
            "seconds_bulk_flat": round(seconds_flat, 2),
            "warm_tables": pool,
            "sharded_rebuilds_per_event": sharded_probe["rebuilds_per_event"],
            "flat_rebuilds_per_event": flat_probe["rebuilds_per_event"],
            "rebuild_reduction": round(reduction, 1),
        })

    return {
        "benchmark": "shard_scale",
        "seed": seed,
        "sizes": list(sizes),
        "churn_events": churn_events,
        "per_size": per_size,
        "rebuild_reduction_at_largest": per_size[-1]["rebuild_reduction"],
        **headline,
    }


def format_shard_scale(record: dict) -> str:
    """Multi-line human rendering of a shard-scale bench record."""
    lines = [
        f"Shard scale @ {record['objects']} objects "
        f"(level {record['shard_level']}, {record['num_shards']} shards): "
        f"bulk_load {record['seconds_bulk_load']:.0f}s "
        f"({record['objects_per_second']} obj/s), "
        f"routing {record['routing']['routes_per_second']:.0f} routes/s "
        f"(mean {record['routing']['mean_hops']:.1f} hops, "
        f"{record['routing']['failures']} failures), "
        f"parallel x{record['parallel_routing']['workers']} identical: "
        f"{record['parallel_routing']['identical_to_serial']}"
    ]
    lines.append("rebuilds/churn-event (sharded vs flat):")
    for row in record["per_size"]:
        lines.append(
            f"  N={row['objects']:>9} level={row['shard_level']}: "
            f"{row['sharded_rebuilds_per_event']:>7.1f} vs "
            f"{row['flat_rebuilds_per_event']:>7.1f}  "
            f"({row['rebuild_reduction']:.1f}x fewer)"
        )
    return "\n".join(lines)


def test_shard_scale_smoke(benchmark, bench_scale):
    """Sharded epochs cut rebuild work; parallel routing matches serial."""
    from conftest import run_once

    base = max(2000, int(round(16_000 * bench_scale)))
    record = run_once(benchmark, run_shard_scale,
                      sizes=(base // 4, base), warm_tables=500,
                      churn_events=10, num_pairs=2000, routing_workers=2)
    print()
    print(format_shard_scale(record))
    benchmark.extra_info.update(record)

    assert record["consistency_problems"] == 0
    assert record["routing"]["failures"] == 0
    assert record["parallel_routing"]["identical_to_serial"]
    # The per-shard epochs must beat the global epoch on every probed size
    # (flat rebuilds the whole warm pool each event; canonical shows >4x at
    # 62k and >40x at 10^6 — leave headroom for tiny smoke sizes).
    for row in record["per_size"]:
        assert row["rebuild_reduction"] >= 1.5, row


def main(argv=None) -> int:
    """Entry point of ``python benchmarks/bench_shard_scale.py``."""
    parser = argparse.ArgumentParser(
        description="Benchmark the Morton-sharded substrate at scale.")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
                        help=f"overlay sizes (default {list(DEFAULT_SIZES)})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--warm-tables", type=int, default=DEFAULT_WARM_TABLES)
    parser.add_argument("--churn-events", type=int, default=DEFAULT_CHURN_EVENTS)
    parser.add_argument("--pairs", type=int, default=DEFAULT_PAIRS)
    parser.add_argument("--workers", type=int, default=4,
                        help="fork workers for the shard-range routing sweep")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON bench record here")
    args = parser.parse_args(argv)

    record = run_shard_scale(sizes=args.sizes, seed=args.seed,
                             warm_tables=args.warm_tables,
                             churn_events=args.churn_events,
                             num_pairs=args.pairs,
                             routing_workers=args.workers)
    print(format_shard_scale(record))
    if args.output is not None:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"record written to {args.output}")
    ok = (record["consistency_problems"] == 0
          and record["routing"]["failures"] == 0
          and record["parallel_routing"]["identical_to_serial"]
          and all(row["rebuild_reduction"] > 1.0 for row in record["per_size"]))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

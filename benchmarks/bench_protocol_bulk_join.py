"""Benchmark PROTO-BULK — batched protocol construction vs sequential joins.

Measures how much faster :meth:`ProtocolSimulator.bulk_join` builds a
message-level overlay than N sequential :meth:`ProtocolSimulator.join`
calls (each run to quiescence, the paper's join protocol), and verifies
the batched path produces the same structure: identical Voronoi adjacency
and close-neighbour sets, and a clean ``verify_views()`` report on both
simulators.  Long links are drawn from the same distribution in a
different RNG order, so the record tracks their counts rather than their
endpoints (the integration suite pins bulk-join long links exactly
against ``VoroNet.bulk_load``).

Two entry points:

* ``pytest benchmarks/bench_protocol_bulk_join.py`` — the pytest-benchmark
  wrapper (workload scaled by ``REPRO_BENCH_SCALE``), asserting the
  speedup threshold at controlled scale;
* ``python benchmarks/bench_protocol_bulk_join.py --objects 2000 --output
  benchmarks/BENCH_protocol_bulk_join.json`` — the standalone runner
  emitting the JSON bench record; exits non-zero when the structural
  checks fail or the speedup drops below ``--min-speedup`` (CI smoke runs
  use 1.0: batched must never be slower).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import VoroNetConfig
from repro.geometry.scipy_backend import adjacency_of
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects

#: Overlay size of the canonical record (the acceptance-criterion scale).
DEFAULT_OBJECTS = 2000
DEFAULT_SEED = 4242


def run_protocol_bulk_join(num_objects: int = DEFAULT_OBJECTS,
                           seed: int = DEFAULT_SEED,
                           num_long_links: int = 1,
                           chunk_size: int | None = None,
                           rounds: int = 2) -> dict:
    """Build the same protocol overlay sequentially and in bulk; return the record.

    Each construction is timed ``rounds`` times (identical seeds, so every
    round builds the same overlay) and the minimum is reported, the
    standard way to suppress scheduler noise in single-shot benchmarks.
    The two paths are interleaved within each round so slow drift (CPU
    frequency scaling, background load) penalises neither side; the
    structural checks run on the last round's simulators.
    """
    positions = generate_objects(
        UniformDistribution(), num_objects, RandomSource(seed))
    config = VoroNetConfig(n_max=4 * num_objects,
                           num_long_links=num_long_links, seed=seed)

    seconds_sequential = float("inf")
    seconds_bulk = float("inf")
    for _ in range(rounds):
        sequential = ProtocolSimulator(config, seed=seed)
        started = time.perf_counter()
        for position in positions:
            sequential.join(position)
        seconds_sequential = min(seconds_sequential,
                                 time.perf_counter() - started)

        bulk = ProtocolSimulator(config, seed=seed)
        before = bulk.network.snapshot_counters()
        started = time.perf_counter()
        report = bulk.bulk_join(positions, chunk_size=chunk_size)
        seconds_bulk = min(seconds_bulk, time.perf_counter() - started)

    problems = sequential.verify_views() + bulk.verify_views()
    structure_identical = (
        adjacency_of(sequential.kernel) == adjacency_of(bulk.kernel)
        and all(set(sequential.node(oid).close) == set(bulk.node(oid).close)
                for oid in report.object_ids)
    )
    return {
        "benchmark": "protocol_bulk_join",
        "objects": num_objects,
        "num_long_links": num_long_links,
        "seed": seed,
        "rounds": rounds,
        "seconds_sequential": round(seconds_sequential, 4),
        "seconds_bulk": round(seconds_bulk, 4),
        "speedup": round(seconds_sequential / seconds_bulk, 2),
        "messages_sequential": sequential.network.messages_sent,
        "messages_bulk": report.messages,
        "phase_messages": dict(report.phase_messages),
        "messages_by_kind_bulk": bulk.network.counters_since(before),
        "view_problems": len(problems),
        "structure_identical_to_sequential": structure_identical,
        "long_links_sequential": sum(len(sequential.node(oid).long_links)
                                     for oid in sequential.object_ids()),
        "long_links_bulk": sum(len(bulk.node(oid).long_links)
                               for oid in bulk.object_ids()),
        "mean_view_size": round(bulk.mean_view_size(), 3),
    }


def format_protocol_bulk_join(record: dict) -> str:
    """One-paragraph human rendering of a bench record."""
    return (
        f"Protocol bulk join @ {record['objects']} objects "
        f"(k={record['num_long_links']}): "
        f"sequential {record['seconds_sequential']:.2f}s "
        f"({record['messages_sequential']} msgs), "
        f"bulk {record['seconds_bulk']:.2f}s "
        f"({record['messages_bulk']} msgs) — {record['speedup']:.1f}x; "
        f"view problems: {record['view_problems']}, "
        f"structure identical: {record['structure_identical_to_sequential']}, "
        f"mean view size: {record['mean_view_size']}"
    )


def test_protocol_bulk_join_speedup(benchmark, bench_scale):
    """Batched construction beats sequential joins with identical structure."""
    from conftest import run_once

    num_objects = max(500, int(round(DEFAULT_OBJECTS * bench_scale)))
    record = run_once(benchmark, run_protocol_bulk_join, num_objects=num_objects)
    print()
    print(format_protocol_bulk_join(record))
    benchmark.extra_info.update(record)

    assert record["view_problems"] == 0
    assert record["structure_identical_to_sequential"]
    # The canonical 2000-object record shows >3x; leave headroom for small
    # scales and noisy CI machines.
    assert record["speedup"] >= 2.0


def main(argv=None) -> int:
    """Entry point of ``python benchmarks/bench_protocol_bulk_join.py``."""
    parser = argparse.ArgumentParser(
        description="Benchmark ProtocolSimulator.bulk_join against sequential joins.")
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS,
                        help=f"overlay size (default {DEFAULT_OBJECTS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--long-links", type=int, default=1)
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="ADD_OBJECT pipeline chunk (default: protocol default)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="timed rounds per construction path (min is kept)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail when the bulk/sequential ratio drops below "
                             "this (CI smoke uses 1.0)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON bench record here")
    args = parser.parse_args(argv)

    record = run_protocol_bulk_join(num_objects=args.objects, seed=args.seed,
                                    num_long_links=args.long_links,
                                    chunk_size=args.chunk_size,
                                    rounds=args.rounds)
    print(format_protocol_bulk_join(record))
    if args.output is not None:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"record written to {args.output}")
    ok = (record["view_problems"] == 0
          and record["structure_identical_to_sequential"])
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {record['speedup']} < required {args.min_speedup}")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

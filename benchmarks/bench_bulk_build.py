"""Benchmark BULK — bulk construction vs sequential routed joins.

Measures how much faster :meth:`VoroNet.bulk_load` builds an overlay than
``insert_many`` (N greedy-routed joins from random introducers, the paper's
join protocol), and verifies the fast path produces the same structure:
identical Voronoi adjacency, a clean ``check_consistency()`` report, and
agreement with the scipy reference triangulation.

Two entry points:

* ``pytest benchmarks/bench_bulk_build.py`` — the pytest-benchmark wrapper
  used alongside the other benchmarks (workload scaled by
  ``REPRO_BENCH_SCALE``);
* ``python benchmarks/bench_bulk_build.py --objects 5000 --output
  benchmarks/BENCH_bulk_build.json`` — the standalone runner that emits the
  JSON bench record tracking the perf trajectory (exits non-zero when the
  structural checks fail, so CI smoke runs catch regressions).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import VoroNet, VoroNetConfig
from repro.geometry.scipy_backend import adjacency_of, compare_with_scipy
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_position_array

#: Overlay size of the canonical record (the acceptance-criterion scale).
DEFAULT_OBJECTS = 5000
DEFAULT_SEED = 4242


def run_bulk_build(num_objects: int = DEFAULT_OBJECTS, seed: int = DEFAULT_SEED,
                   num_long_links: int = 1) -> dict:
    """Build the same overlay sequentially and in bulk; return the record."""
    positions = generate_position_array(
        UniformDistribution(), num_objects, RandomSource(seed))
    config = VoroNetConfig(n_max=4 * num_objects,
                           num_long_links=num_long_links, seed=seed)

    started = time.perf_counter()
    sequential = VoroNet(config)
    sequential.insert_many([tuple(p) for p in positions])
    seconds_sequential = time.perf_counter() - started

    started = time.perf_counter()
    bulk = VoroNet(config)
    bulk.bulk_load(positions)
    seconds_bulk = time.perf_counter() - started

    problems = bulk.check_consistency()
    scipy_mismatches = compare_with_scipy(bulk.triangulation)
    adjacency_identical = (adjacency_of(sequential.triangulation)
                           == adjacency_of(bulk.triangulation))
    return {
        "benchmark": "bulk_build",
        "objects": num_objects,
        "num_long_links": num_long_links,
        "seed": seed,
        "seconds_sequential": round(seconds_sequential, 4),
        "seconds_bulk": round(seconds_bulk, 4),
        "speedup": round(seconds_sequential / seconds_bulk, 2),
        "consistency_problems": len(problems),
        "scipy_adjacency_mismatches": len(scipy_mismatches),
        "adjacency_identical_to_sequential": adjacency_identical,
    }


def format_bulk_build(record: dict) -> str:
    """One-paragraph human rendering of a bench record."""
    return (
        f"Bulk build @ {record['objects']} objects "
        f"(k={record['num_long_links']}): "
        f"sequential {record['seconds_sequential']:.2f}s, "
        f"bulk {record['seconds_bulk']:.2f}s — {record['speedup']:.1f}x; "
        f"consistency problems: {record['consistency_problems']}, "
        f"scipy mismatches: {record['scipy_adjacency_mismatches']}, "
        f"adjacency identical: {record['adjacency_identical_to_sequential']}"
    )


def test_bulk_build_speedup(benchmark, bench_scale):
    """Bulk construction beats sequential joins and matches their structure."""
    from conftest import run_once

    num_objects = max(1000, int(round(DEFAULT_OBJECTS * bench_scale)))
    record = run_once(benchmark, run_bulk_build, num_objects=num_objects)
    print()
    print(format_bulk_build(record))
    benchmark.extra_info.update(record)

    assert record["consistency_problems"] == 0
    assert record["scipy_adjacency_mismatches"] == 0
    assert record["adjacency_identical_to_sequential"]
    # The canonical 5000-object record shows >5x; leave headroom for small
    # scales and noisy CI machines.
    assert record["speedup"] >= 3.0


def main(argv=None) -> int:
    """Entry point of ``python benchmarks/bench_bulk_build.py``."""
    parser = argparse.ArgumentParser(
        description="Benchmark VoroNet.bulk_load against sequential insert_many.")
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS,
                        help=f"overlay size (default {DEFAULT_OBJECTS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--long-links", type=int, default=1)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON bench record here")
    args = parser.parse_args(argv)

    record = run_bulk_build(num_objects=args.objects, seed=args.seed,
                            num_long_links=args.long_links)
    print(format_bulk_build(record))
    if args.output is not None:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"record written to {args.output}")
    # Exit code reflects the *correctness* checks only: the speedup is a
    # recorded measurement (noisy at tiny --objects), asserted against its
    # threshold by the pytest-benchmark wrapper at controlled scale.
    ok = (record["consistency_problems"] == 0
          and record["scipy_adjacency_mismatches"] == 0
          and record["adjacency_identical_to_sequential"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark FIG5 — reproduces Figure 5 (Voronoi out-degree histograms).

Paper: 300 000-object overlays under uniform and α=5 placements; the
out-degree histogram is centred around 6 regardless of the distribution.
This benchmark regenerates the histograms (all four evaluation
distributions) and records the summary statistics.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig5_degree import format_fig5, run_fig5


def test_fig5_degree_distribution(benchmark, bench_scale):
    """Regenerate Figure 5 and check its qualitative claims."""
    result = run_once(benchmark, run_fig5, scale=bench_scale)
    print()
    print(format_fig5(result))

    for name, summary in result.summaries.items():
        benchmark.extra_info[f"{name}_mean_degree"] = round(summary.mean, 3)
        benchmark.extra_info[f"{name}_mode"] = summary.mode
        # Figure 5 claim: the histogram is centred around 6 for every
        # distribution, skewed or not.
        assert 5.0 <= summary.mean <= 6.0, name
        assert 4 <= summary.mode <= 7, name
        assert summary.fraction_between(3, 9) > 0.9, name
    benchmark.extra_info["overlay_size"] = result.overlay_size

"""Benchmark FIG7 — reproduces Figure 7 (log(H) vs log(log N) slope ≈ 2).

Paper: replotting the Figure 6 series as log(H) against log(log |O|) gives
straight lines whose slope x is close to 2, confirming the O(log² N)
routing analysis.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig7_slope import format_fig7, run_fig7


def test_fig7_polylog_slope(benchmark, bench_scale):
    """Regenerate Figure 7 and check the fitted exponents."""
    result = run_once(benchmark, run_fig7, scale=bench_scale)
    print()
    print(format_fig7(result))

    for name, fit in result.fits.items():
        benchmark.extra_info[f"{name}_slope"] = round(fit.slope, 3)
        benchmark.extra_info[f"{name}_r2"] = round(fit.r_squared, 3)
        # The paper reports x ≈ 2 at 300 k objects.  At benchmark scale the
        # estimate is noisier; the acceptance band excludes logarithmic
        # (slope ≈ 1 would need < 0.8) and polynomial (> 3.5) behaviour.
        assert 0.8 <= fit.slope <= 3.5, name
        # The relationship must actually be close to a straight line.
        assert fit.r_squared > 0.7, name

"""Shared configuration of the benchmark harness.

Every benchmark wraps one experiment driver from :mod:`repro.experiments`.
The drivers are deterministic and expensive, so each benchmark runs exactly
one round (``pedantic`` mode) and records the scientific results — the
numbers that correspond to the paper's figures — in ``extra_info`` so they
are preserved in ``pytest-benchmark``'s JSON output, in addition to being
printed to the terminal (run with ``-s`` to see them live).

The workload sizes follow the scaled-down defaults documented in
``EXPERIMENTS.md``; set ``REPRO_BENCH_SCALE`` to grow them towards paper
scale (≈ 50–75).
"""

from __future__ import annotations

import os

import pytest

#: Default scale of benchmark workloads (can be overridden by the
#: ``REPRO_BENCH_SCALE`` environment variable, which the experiment drivers
#: read directly).
DEFAULT_BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Scale factor applied to every benchmark workload."""
    return DEFAULT_BENCH_SCALE


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark timer and return it."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

"""Benchmark ABL2 — VoroNet against its baselines.

Positions VoroNet against the systems the paper situates itself relative
to: the bare Delaunay overlay (no long links), a random-shortcut overlay
(no harmonic distribution), the original Kleinberg grid (regular placements
only) and a Chord DHT (hash-based exact match; range queries degenerate to
one lookup per value).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_baselines import (
    format_baseline_comparison,
    run_baseline_comparison,
)


def test_baseline_comparison(benchmark, bench_scale):
    """Compare routing cost and range-query cost across systems."""
    result = run_once(benchmark, run_baseline_comparison, scale=bench_scale)
    print()
    print(format_baseline_comparison(result))

    for system, hops in result.mean_hops.items():
        benchmark.extra_info[f"{system}_mean_hops"] = round(hops, 2)
    for system, rate in result.success_rate.items():
        benchmark.extra_info[f"{system}_success"] = round(rate, 3)

    # The long links are what buys the speed-up over the bare tessellation.
    assert result.mean_hops["voronet"] < result.mean_hops["delaunay-only"]
    # Uniformly random shortcuts are not navigable: greedy gets stuck.
    assert result.success_rate["random-graph"] < 1.0
    assert result.success_rate["voronet"] == 1.0
    # Range queries: VoroNet's spread along the tessellation costs far fewer
    # messages than a DHT's one-lookup-per-value enumeration.
    assert (result.range_query_messages["voronet"]
            < result.range_query_messages["chord"])

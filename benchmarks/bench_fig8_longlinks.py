"""Benchmark FIG8 — reproduces Figure 8 (number of long links vs routing).

Paper: with 1 to 10 long-range links per object (uniform and α=5
placements), routing improves consistently with the number of links, the
gain being most significant up to about 6 links.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig8_longlinks import format_fig8, run_fig8


def test_fig8_long_link_count(benchmark, bench_scale):
    """Regenerate Figure 8 and check its qualitative claims."""
    result = run_once(benchmark, run_fig8, scale=bench_scale)
    print()
    print(format_fig8(result))

    for name in result.results:
        series = result.mean_hops(name)
        benchmark.extra_info[f"{name}_hops_by_k"] = [round(v, 2) for v in series]
        one_link = series[0]
        six_links = result.results[name][6].mean
        ten_links = result.results[name][result.link_counts[-1]].mean
        # More long links help substantially...
        assert six_links < one_link, name
        assert ten_links < one_link, name
        # ...but the marginal gain beyond ~6 links is small compared to the
        # gain achieved by the first six (diminishing returns).
        gain_to_six = one_link - six_links
        gain_beyond_six = six_links - ten_links
        assert gain_beyond_six < gain_to_six, name
    benchmark.extra_info["overlay_size"] = result.overlay_size

"""Benchmark PROTO-CHURN — message-level crash detection and repair.

Builds a bulk-joined protocol overlay, churns it gracefully, crashes a
fraction of the population abruptly, and measures the self-healing path of
the fault subsystem (:mod:`repro.simulation.faults`): heartbeat detection
rounds, phased repair rounds, and the message cost of every phase.  The
record asserts *convergence*, not mere completion: repair must finish
within the round budget with a clean ``verify_views()`` and zero residual
stale references — dangling long links, stale close neighbours and
dangling back registrations all healed entirely through counted messages.

Two entry points:

* ``pytest benchmarks/bench_protocol_churn.py`` — the pytest-benchmark
  wrapper (workload scaled by ``REPRO_BENCH_SCALE``), asserting
  convergence at controlled scale;
* ``python benchmarks/bench_protocol_churn.py --objects 1000 --output
  benchmarks/BENCH_protocol_churn.json`` — the standalone runner emitting
  the JSON bench record; exits non-zero when repair fails to converge
  within ``--max-repair-rounds`` rounds or any residual damage survives
  (CI smoke runs use a small overlay with the same convergence bar).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.simulation.faults import ProtocolChurnHarness

#: Overlay size of the canonical record (the acceptance-criterion scale:
#: crash 10% of a 1 000-object bulk-joined protocol overlay).
DEFAULT_OBJECTS = 1000
DEFAULT_SEED = 4242
DEFAULT_CRASH_FRACTION = 0.1
DEFAULT_MAX_REPAIR_ROUNDS = 12


def run_protocol_churn(num_objects: int = DEFAULT_OBJECTS,
                       seed: int = DEFAULT_SEED,
                       crash_fraction: float = DEFAULT_CRASH_FRACTION,
                       churn_events: int = 48,
                       loss_probability: float = 0.0,
                       max_repair_rounds: int = DEFAULT_MAX_REPAIR_ROUNDS,
                       measure_liveness: bool = True) -> dict:
    """Run the harness once and return the JSON-serialisable bench record."""
    harness = ProtocolChurnHarness(
        num_objects=num_objects, seed=seed,
        crash_fraction=crash_fraction, churn_events=churn_events,
        loss_probability=loss_probability,
        max_repair_rounds=max_repair_rounds,
        measure_liveness=measure_liveness,
    )
    started = time.perf_counter()
    report = harness.run()
    seconds = time.perf_counter() - started
    damage = report.damage
    residual = report.residual_damage
    return {
        "benchmark": "protocol_churn",
        "objects": num_objects,
        "seed": seed,
        "crash_fraction": crash_fraction,
        "churn_events": churn_events,
        "loss_probability": loss_probability,
        "max_repair_rounds": max_repair_rounds,
        "seconds_total": round(seconds, 4),
        "objects_built": report.objects_built,
        "churn_joins": report.churn_joins,
        "churn_leaves": report.churn_leaves,
        "crashed": report.crashed,
        "damage_before_repair": {
            "dangling_long_links": damage.dangling_long_links,
            "stale_close_neighbors": damage.stale_close_neighbors,
            "dangling_back_links": damage.dangling_back_links,
            "stale_voronoi_entries": damage.stale_voronoi_entries,
            "affected_objects": damage.affected_objects,
            "total_stale_entries": damage.total_stale_entries,
        },
        "detection_rounds": report.detection_rounds,
        "repair_rounds": report.repair.rounds,
        "reissued_long_links": report.repair.reissued_long_links,
        "phase_messages": dict(report.phase_messages),
        "residual_stale_entries": residual.total_stale_entries,
        "verify_problems": report.verify_problems,
        "converged": report.converged,
        "virtual_time": round(report.virtual_time, 2),
        "steady_state_liveness": report.steady_state_liveness,
    }


def record_ok(record: dict) -> bool:
    """The convergence bar the smoke asserts: repaired, clean and bounded."""
    return (record["converged"]
            and record["verify_problems"] == 0
            and record["residual_stale_entries"] == 0
            and record["repair_rounds"] <= record["max_repair_rounds"])


def format_protocol_churn(record: dict) -> str:
    """One-paragraph human rendering of a bench record."""
    damage = record["damage_before_repair"]
    text = (
        f"Protocol churn @ {record['objects']} objects: "
        f"{record['crashed']} crashed ({record['crash_fraction']:.0%}) after "
        f"{record['churn_joins']}+{record['churn_leaves']} churn ops — "
        f"{damage['total_stale_entries']} stale entries across "
        f"{damage['affected_objects']} survivors; detected in "
        f"{record['detection_rounds']} heartbeat rounds, repaired in "
        f"{record['repair_rounds']} rounds "
        f"({record['phase_messages'].get('repair', 0)} msgs), "
        f"residual {record['residual_stale_entries']}, "
        f"verify problems {record['verify_problems']}, "
        f"converged: {record['converged']}"
    )
    steady = record.get("steady_state_liveness")
    if steady:
        text += (
            f"; steady-state liveness over {steady['rounds']:.0f} rounds "
            f"(+{steady['queries_per_round']:.0f} queries/round): "
            f"{steady['full_probe_messages']:.0f} full-probe → "
            f"{steady['piggyback_messages']:.0f} piggyback+sampled msgs "
            f"({steady['reduction']:.1f}× fewer)"
        )
    return text


def test_protocol_churn_repair_converges(benchmark, bench_scale):
    """Crash 10% of a bulk-joined overlay; repair must converge cleanly."""
    from conftest import run_once

    num_objects = max(200, int(round(DEFAULT_OBJECTS * bench_scale)))
    record = run_once(benchmark, run_protocol_churn, num_objects=num_objects)
    print()
    print(format_protocol_churn(record))
    benchmark.extra_info.update(record)

    assert record["damage_before_repair"]["total_stale_entries"] > 0
    assert record_ok(record)
    # Detection is bounded by the miss threshold plus slack; repair of a
    # loss-free crash wave settles in a couple of phased rounds.
    assert record["repair_rounds"] <= 4
    # Piggy-backed/sampled liveness must stay well under the full-probe
    # steady-state cost (the canonical record shows ≥5× at N=1000).
    assert record["steady_state_liveness"]["reduction"] >= 3.0


def main(argv=None) -> int:
    """Entry point of ``python benchmarks/bench_protocol_churn.py``."""
    parser = argparse.ArgumentParser(
        description="Benchmark message-level crash detection + repair.")
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS,
                        help=f"overlay size (default {DEFAULT_OBJECTS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--crash-fraction", type=float,
                        default=DEFAULT_CRASH_FRACTION)
    parser.add_argument("--churn-events", type=int, default=48)
    parser.add_argument("--loss", type=float, default=0.0,
                        help="message-loss probability during detect/repair")
    parser.add_argument("--max-repair-rounds", type=int,
                        default=DEFAULT_MAX_REPAIR_ROUNDS,
                        help="round budget the convergence assertion enforces")
    parser.add_argument("--min-liveness-reduction", type=float, default=None,
                        help="fail unless the steady-state liveness message "
                             "reduction (full-probe / piggyback) ≥ this")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON bench record here")
    args = parser.parse_args(argv)

    record = run_protocol_churn(num_objects=args.objects, seed=args.seed,
                                crash_fraction=args.crash_fraction,
                                churn_events=args.churn_events,
                                loss_probability=args.loss,
                                max_repair_rounds=args.max_repair_rounds)
    print(format_protocol_churn(record))
    if args.output is not None:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"record written to {args.output}")
    if not record_ok(record):
        print(f"FAIL: repair did not converge within "
              f"{args.max_repair_rounds} rounds "
              f"(converged={record['converged']}, "
              f"verify={record['verify_problems']}, "
              f"residual={record['residual_stale_entries']})")
        return 1
    if args.min_liveness_reduction is not None:
        reduction = record["steady_state_liveness"]["reduction"]
        if reduction < args.min_liveness_reduction:
            print(f"FAIL: steady-state liveness reduction {reduction:.2f} "
                  f"< {args.min_liveness_reduction}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

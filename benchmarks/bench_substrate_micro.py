"""Micro-benchmarks of the substrates backing the experiments.

Not a paper figure: these measure the raw cost of the operations every
experiment is built from (Delaunay insertion, point location, greedy
routing, a full distributed join), so regressions in the kernels show up
directly in ``pytest-benchmark``'s timing statistics.
"""

from __future__ import annotations

import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.core.routing import route_to_object
from repro.geometry.delaunay import DelaunayTriangulation
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects


@pytest.fixture(scope="module")
def overlay_1k():
    overlay = VoroNet(VoroNetConfig(n_max=4000, seed=404))
    positions = generate_objects(UniformDistribution(), 1000, RandomSource(404))
    overlay.insert_many(positions)
    return overlay


def test_delaunay_insert_1000_points(benchmark):
    """Time building a 1 000-point Delaunay triangulation incrementally."""
    points = generate_objects(UniformDistribution(), 1000, RandomSource(1))

    def build():
        dt = DelaunayTriangulation()
        previous = None
        for p in points:
            previous = dt.insert(p, hint=previous)
        return dt

    dt = benchmark(build)
    assert len(dt) == 1000


def test_delaunay_nearest_vertex(benchmark, overlay_1k):
    """Time point location (nearest vertex) on a 1 000-object tessellation."""
    queries = generate_objects(UniformDistribution(), 200, RandomSource(2))
    kernel = overlay_1k.triangulation

    def locate_all():
        return [kernel.nearest_vertex(q) for q in queries]

    owners = benchmark(locate_all)
    assert len(owners) == 200


def test_greedy_route_on_1k_overlay(benchmark, overlay_1k):
    """Time a batch of 200 greedy routes on a 1 000-object overlay."""
    rng = RandomSource(3)
    ids = overlay_1k.object_ids()
    pairs = [(ids[rng.integer(0, len(ids))], ids[rng.integer(0, len(ids))])
             for _ in range(200)]

    def route_all():
        return [route_to_object(overlay_1k, a, b).hops for a, b in pairs if a != b]

    hops = benchmark(route_all)
    assert all(h >= 0 for h in hops)


def test_overlay_join_throughput(benchmark):
    """Time publishing 300 objects into a fresh overlay (routing + maintenance)."""
    positions = generate_objects(UniformDistribution(), 300, RandomSource(4))

    def build():
        overlay = VoroNet(VoroNetConfig(n_max=1200, seed=4))
        overlay.insert_many(positions)
        return overlay

    overlay = benchmark(build)
    assert len(overlay) == 300


def test_protocol_join_messages(benchmark):
    """Time 60 message-level distributed joins (event engine + protocol)."""
    positions = generate_objects(UniformDistribution(), 60, RandomSource(5))

    def build():
        simulator = ProtocolSimulator(VoroNetConfig(n_max=256, seed=5), seed=5)
        for p in positions:
            simulator.join(p)
        return simulator

    simulator = benchmark(build)
    assert len(simulator) == 60
